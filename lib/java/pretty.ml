(** Printing for the Java subset.

    [expr] produces the *canonical rendering* that the pattern templates of
    the knowledge base match against: deterministic token spacing (one
    space around binary and assignment operators, none around unary and
    postfix operators), and the minimal parentheses needed to re-parse to
    the same tree.  [parse (expr e)] round-trips. *)

open Ast

let escape_char = function
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | '"' -> "\\\""
  | c -> String.make 1 c

let string_literal s =
  "\"" ^ String.concat "" (List.map escape_char (List.init (String.length s) (String.get s))) ^ "\""

let double_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

(* Printing precedence; higher binds tighter. *)
let prec_binary = function
  | Or -> 3
  | And -> 4
  | Bit_or -> 5
  | Bit_xor -> 6
  | Bit_and -> 7
  | Eq | Ne -> 8
  | Lt | Le | Gt | Ge -> 9
  | Shl | Shr | Ushr -> 10
  | Add | Sub -> 11
  | Mul | Div | Mod -> 12

let prec = function
  | Assign _ -> 1
  | Ternary _ -> 2
  | Binary (op, _, _) -> prec_binary op
  | Unary _ | Incdec ((Pre_incr | Pre_decr), _) | Cast _ -> 14
  | _ -> 16 (* literals, variables, postfix forms *)

let rec render e = fst (render_prec e)

and render_prec e = (go e, prec e)

and child ~parent ~strict e =
  let s, p = render_prec e in
  if p < parent || (strict && p = parent) then "(" ^ s ^ ")" else s

and go = function
  | Int_lit n -> string_of_int n
  | Double_lit f -> double_literal f
  | Bool_lit b -> if b then "true" else "false"
  | Char_lit c -> "'" ^ escape_char c ^ "'"
  | Str_lit s -> string_literal s
  | Null_lit -> "null"
  | Var x -> x
  | Field (e, f) -> child ~parent:16 ~strict:false e ^ "." ^ f
  | Index (e, i) -> child ~parent:16 ~strict:false e ^ "[" ^ render i ^ "]"
  | Call (recv, name, args) ->
      let prefix =
        match recv with
        | None -> ""
        | Some r -> child ~parent:16 ~strict:false r ^ "."
      in
      prefix ^ name ^ "(" ^ String.concat ", " (List.map render args) ^ ")"
  | New (t, args) ->
      "new " ^ string_of_typ t ^ "("
      ^ String.concat ", " (List.map render args)
      ^ ")"
  | New_array (t, dims) ->
      "new " ^ string_of_typ t
      ^ String.concat "" (List.map (fun d -> "[" ^ render d ^ "]") dims)
  | Array_lit elts -> "{" ^ String.concat ", " (List.map render elts) ^ "}"
  | Unary (op, e) ->
      (* Guard against token gluing: [-(-x)] must not render as [--x]
         (which lexes as a decrement); same for [+]. *)
      let body = child ~parent:14 ~strict:false e in
      let op_s = string_of_unop op in
      if String.length body > 0 && body.[0] = op_s.[0] then
        op_s ^ "(" ^ render e ^ ")"
      else op_s ^ body
  | Incdec (Pre_incr, e) -> "++" ^ child ~parent:14 ~strict:false e
  | Incdec (Pre_decr, e) -> "--" ^ child ~parent:14 ~strict:false e
  | Incdec (Post_incr, e) -> child ~parent:16 ~strict:false e ^ "++"
  | Incdec (Post_decr, e) -> child ~parent:16 ~strict:false e ^ "--"
  | Binary (op, l, r) ->
      let p = prec_binary op in
      child ~parent:p ~strict:false l
      ^ " " ^ string_of_binop op ^ " "
      ^ child ~parent:p ~strict:true r
  | Assign (op, lhs, rhs) ->
      child ~parent:2 ~strict:false lhs
      ^ " " ^ string_of_assign_op op ^ " "
      ^ child ~parent:1 ~strict:false rhs
  | Ternary (c, t, f) ->
      child ~parent:3 ~strict:false c ^ " ? " ^ render t ^ " : "
      ^ child ~parent:2 ~strict:false f
  | Cast (t, e) -> "(" ^ string_of_typ t ^ ") " ^ child ~parent:14 ~strict:false e

let expr = render

(* ------------------------------------------------------------------ *)
(* Statements / programs, with indentation                             *)

(* Does the statement's rightmost spine end in an if without an else (so
   a following [else] keyword would be captured by it)? *)
let rec ends_dangling = function
  | Sif (_, _, None) -> true
  | Sif (_, _, Some e) -> ends_dangling e
  | Swhile (_, b) | Sfor (_, _, _, b) -> ends_dangling b
  | Sdo _ | Sblock _ | Sswitch _ | Sempty | Sexpr _ | Sdecl _ | Sbreak
  | Scontinue | Sreturn _ ->
      false

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Sempty -> [ pad ^ ";" ]
  | Sexpr e -> [ pad ^ expr e ^ ";" ]
  | Sdecl decls -> [ pad ^ decl_line decls ]
  | Sbreak -> [ pad ^ "break;" ]
  | Scontinue -> [ pad ^ "continue;" ]
  | Sreturn None -> [ pad ^ "return;" ]
  | Sreturn (Some e) -> [ pad ^ "return " ^ expr e ^ ";" ]
  | Sblock body ->
      (pad ^ "{")
      :: List.concat_map (stmt_lines (indent + 4)) body
      @ [ pad ^ "}" ]
  | Sif (cond, then_, else_) -> (
      let head = pad ^ "if (" ^ expr cond ^ ")" in
      match else_ with
      | None -> head :: nested indent then_
      | Some e ->
          (* Dangling-else protection: when the then-branch ends in an
             else-less [if], an unbraced rendering would re-attach this
             [else] to the inner [if] and change the semantics. *)
          let then_stmt =
            if ends_dangling then_ then Sblock [ then_ ] else then_
          in
          (head :: nested indent then_stmt)
          @ ((pad ^ "else") :: nested indent e))
  | Swhile (cond, body) ->
      (pad ^ "while (" ^ expr cond ^ ")") :: nested indent body
  | Sdo (body, cond) ->
      (pad ^ "do") :: nested indent body @ [ pad ^ "while (" ^ expr cond ^ ");" ]
  | Sfor (init, cond, update, body) ->
      let init_s =
        match init with
        | None -> ""
        | Some (For_decl decls) ->
            let line = decl_line decls in
            String.sub line 0 (String.length line - 1)
        | Some (For_exprs es) -> String.concat ", " (List.map expr es)
      in
      let cond_s = match cond with None -> "" | Some c -> expr c in
      let upd_s = String.concat ", " (List.map expr update) in
      (pad ^ Printf.sprintf "for (%s; %s; %s)" init_s cond_s upd_s)
      :: nested indent body
  | Sswitch (scrutinee, cases) ->
      let case_lines c =
        let label =
          match c.case_label with
          | Some e -> pad ^ "case " ^ expr e ^ ":"
          | None -> pad ^ "default:"
        in
        label :: List.concat_map (stmt_lines (indent + 4)) c.case_body
      in
      ((pad ^ "switch (" ^ expr scrutinee ^ ") {")
      :: List.concat_map case_lines cases)
      @ [ pad ^ "}" ]

and nested indent s =
  match s with
  | Sblock _ -> stmt_lines indent s
  | _ -> stmt_lines (indent + 4) s

and decl_line decls =
  match decls with
  | [] -> ";"
  | { d_type; _ } :: _ ->
      let base =
        let rec strip = function Tarray t -> strip t | t -> t in
        strip d_type
      in
      let declarator d =
        let rec suffix = function Tarray t -> suffix t ^ "[]" | _ -> "" in
        d.d_name ^ suffix d.d_type
        ^ match d.d_init with None -> "" | Some e -> " = " ^ expr e
      in
      (* First declarator carries the array suffix in the base type when all
         declarators share it (the common case [int[] a = ...]). *)
      let all_same = List.for_all (fun d -> d.d_type = d_type) decls in
      if all_same then
        string_of_typ d_type ^ " "
        ^ String.concat ", "
            (List.map
               (fun d ->
                 d.d_name
                 ^ match d.d_init with None -> "" | Some e -> " = " ^ expr e)
               decls)
        ^ ";"
      else
        string_of_typ base ^ " " ^ String.concat ", " (List.map declarator decls)
        ^ ";"

let stmt ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)

let meth ?(indent = 0) m =
  let pad = String.make indent ' ' in
  let params =
    String.concat ", "
      (List.map (fun p -> string_of_typ p.p_type ^ " " ^ p.p_name) m.m_params)
  in
  let head =
    Printf.sprintf "%s%s %s(%s) {" pad (string_of_typ m.m_ret) m.m_name params
  in
  String.concat "\n"
    ((head :: List.concat_map (stmt_lines (indent + 4)) m.m_body)
    @ [ pad ^ "}" ])

let program p = String.concat "\n\n" (List.map (meth ?indent:None) p.methods)
