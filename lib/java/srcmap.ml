(** Source-position side table keyed by physical identity.  See
    srcmap.mli. *)

type pos = { line : int; col : int }

(* [Hashtbl.hash] is structural, which only spreads the buckets; the
   [==] equality is what distinguishes two structurally equal nodes. *)
module Phys (T : sig
  type t
end) =
Hashtbl.Make (struct
  type t = T.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Stmts = Phys (struct
  type t = Ast.stmt
end)

module Decls = Phys (struct
  type t = Ast.var_decl
end)

module Meths = Phys (struct
  type t = Ast.meth
end)

type t = {
  stmts : pos Stmts.t;
  decls : pos Decls.t;
  meths : pos Meths.t;
}

let create () =
  { stmts = Stmts.create 64; decls = Decls.create 16; meths = Meths.create 4 }

let record_stmt t s p = Stmts.replace t.stmts s p
let record_decl t d p = Decls.replace t.decls d p
let record_meth t m p = Meths.replace t.meths m p
let stmt_pos t s = Stmts.find_opt t.stmts s
let decl_pos t d = Decls.find_opt t.decls d
let meth_pos t m = Meths.find_opt t.meths m
