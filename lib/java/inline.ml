(** Method inlining (the paper's §VII future work: "we will also deal
    with multiple, non-expected methods by the instructor by combining
    function inlining and approximate subgraph matching").

    When a student extracts part of the expected computation into her own
    helper method, the knowledge base's patterns no longer see the whole
    shape in one dependence graph.  [inline_into] substitutes calls to
    *simple* helpers — a single [return e] body — by their argument-
    substituted expression, and [inline_voids] splices the statements of
    void helpers called as statements into the caller.

    Only zero-risk cases are inlined:
    - expression helpers: one [return e] statement, parameters used
      directly (arguments are substituted syntactically, so arguments
      must be pure: variables or literals);
    - statement helpers: a [void] body with no [return] whose parameters
      are bound as fresh declarations before the spliced body;
    - no recursion (direct or via the inlining itself). *)

open Ast

(* Side-effect-free arguments may be substituted (and hence possibly
   re-evaluated) safely; anything that writes, calls or allocates may
   not. *)
let rec is_pure_arg = function
  | Var _ | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
  | Null_lit ->
      true
  | Index (a, i) -> is_pure_arg a && is_pure_arg i
  | Field (o, _) -> is_pure_arg o
  | Unary (_, a) | Cast (_, a) -> is_pure_arg a
  | Binary (_, a, b) -> is_pure_arg a && is_pure_arg b
  | Ternary (c, t, f) -> is_pure_arg c && is_pure_arg t && is_pure_arg f
  | Call _ | New _ | New_array _ | Array_lit _ | Incdec _ | Assign _ -> false

(* Substitute variables by expressions in an expression. *)
let rec subst_expr env (e : expr) : expr =
  match e with
  | Var x -> ( match List.assoc_opt x env with Some e' -> e' | None -> e)
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
    ->
      e
  | Field (o, f) -> Field (subst_expr env o, f)
  | Index (a, i) -> Index (subst_expr env a, subst_expr env i)
  | Call (recv, name, args) ->
      Call (Option.map (subst_expr env) recv, name, List.map (subst_expr env) args)
  | New (t, args) -> New (t, List.map (subst_expr env) args)
  | New_array (t, dims) -> New_array (t, List.map (subst_expr env) dims)
  | Array_lit elts -> Array_lit (List.map (subst_expr env) elts)
  | Unary (op, a) -> Unary (op, subst_expr env a)
  | Incdec (k, a) -> Incdec (k, subst_expr env a)
  | Binary (op, a, b) -> Binary (op, subst_expr env a, subst_expr env b)
  | Assign (op, a, b) -> Assign (op, subst_expr env a, subst_expr env b)
  | Ternary (c, t, f) ->
      Ternary (subst_expr env c, subst_expr env t, subst_expr env f)
  | Cast (t, a) -> Cast (t, subst_expr env a)

(* An expression helper: exactly [return e]. *)
let expression_helper (m : meth) =
  match m.m_body with
  | [ Sreturn (Some e) ] -> Some e
  | _ -> None

(* A statement helper: void, no return anywhere. *)
let rec stmt_has_return = function
  | Sreturn _ -> true
  | Sblock body -> List.exists stmt_has_return body
  | Sif (_, t, e) ->
      stmt_has_return t || Option.fold ~none:false ~some:stmt_has_return e
  | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) -> stmt_has_return b
  | Sswitch (_, cases) ->
      List.exists (fun k -> List.exists stmt_has_return k.case_body) cases
  | Sempty | Sexpr _ | Sdecl _ | Sbreak | Scontinue -> false

let statement_helper (m : meth) =
  if m.m_ret = Tprim "void" && not (List.exists stmt_has_return m.m_body) then
    Some m.m_body
  else None

let rec calls_method name (e : expr) =
  match e with
  | Call (None, n, args) ->
      n = name || List.exists (calls_method name) args
  | Call (Some r, _, args) ->
      calls_method name r || List.exists (calls_method name) args
  | Field (o, _) -> calls_method name o
  | Index (a, i) -> calls_method name a || calls_method name i
  | New (_, args) | New_array (_, args) | Array_lit args ->
      List.exists (calls_method name) args
  | Unary (_, a) | Incdec (_, a) | Cast (_, a) -> calls_method name a
  | Binary (_, a, b) | Assign (_, a, b) ->
      calls_method name a || calls_method name b
  | Ternary (c, t, f) ->
      calls_method name c || calls_method name t || calls_method name f
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
  | Var _ ->
      false

let rec stmt_calls_method name = function
  | Sexpr e -> calls_method name e
  | Sdecl ds ->
      List.exists
        (fun d -> Option.fold ~none:false ~some:(calls_method name) d.d_init)
        ds
  | Sif (c, t, e) ->
      calls_method name c || stmt_calls_method name t
      || Option.fold ~none:false ~some:(stmt_calls_method name) e
  | Swhile (c, b) | Sdo (b, c) ->
      calls_method name c || stmt_calls_method name b
  | Sfor (init, cond, upd, b) ->
      (match init with
      | Some (For_decl ds) ->
          List.exists
            (fun d ->
              Option.fold ~none:false ~some:(calls_method name) d.d_init)
            ds
      | Some (For_exprs es) -> List.exists (calls_method name) es
      | None -> false)
      || Option.fold ~none:false ~some:(calls_method name) cond
      || List.exists (calls_method name) upd
      || stmt_calls_method name b
  | Sswitch (scr, cases) ->
      calls_method name scr
      || List.exists
           (fun k -> List.exists (stmt_calls_method name) k.case_body)
           cases
  | Sreturn (Some e) -> calls_method name e
  | Sblock body -> List.exists (stmt_calls_method name) body
  | Sempty | Sbreak | Scontinue | Sreturn None -> false

(* Rewrite calls to [name] in an expression by the substituted body. *)
let rec inline_expr ~name ~params ~body (e : expr) : expr =
  let r = inline_expr ~name ~params ~body in
  match e with
  | Call (None, n, args) when n = name && List.length args = List.length params
    ->
      let args = List.map r args in
      if List.for_all is_pure_arg args then
        subst_expr (List.combine params args) body
      else Call (None, n, args)
  | Call (recv, n, args) -> Call (Option.map r recv, n, List.map r args)
  | Field (o, f) -> Field (r o, f)
  | Index (a, i) -> Index (r a, r i)
  | New (t, args) -> New (t, List.map r args)
  | New_array (t, dims) -> New_array (t, List.map r dims)
  | Array_lit elts -> Array_lit (List.map r elts)
  | Unary (op, a) -> Unary (op, r a)
  | Incdec (k, a) -> Incdec (k, r a)
  | Binary (op, a, b) -> Binary (op, r a, r b)
  | Assign (op, a, b) -> Assign (op, r a, r b)
  | Ternary (c, t, f) -> Ternary (r c, r t, r f)
  | Cast (t, a) -> Cast (t, r a)
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
  | Var _ ->
      e

let rec inline_expr_stmt ~name ~params ~body (s : stmt) : stmt =
  let re = inline_expr ~name ~params ~body in
  let rs = inline_expr_stmt ~name ~params ~body in
  match s with
  | Sexpr e -> Sexpr (re e)
  | Sdecl ds ->
      Sdecl (List.map (fun d -> { d with d_init = Option.map re d.d_init }) ds)
  | Sif (c, t, e) -> Sif (re c, rs t, Option.map rs e)
  | Swhile (c, b) -> Swhile (re c, rs b)
  | Sdo (b, c) -> Sdo (rs b, re c)
  | Sfor (init, cond, upd, b) ->
      let init =
        match init with
        | Some (For_decl ds) ->
            Some
              (For_decl
                 (List.map
                    (fun d -> { d with d_init = Option.map re d.d_init })
                    ds))
        | Some (For_exprs es) -> Some (For_exprs (List.map re es))
        | None -> None
      in
      Sfor (init, Option.map re cond, List.map re upd, rs b)
  | Sswitch (scr, cases) ->
      Sswitch
        ( re scr,
          List.map (fun k -> { k with case_body = List.map rs k.case_body }) cases )
  | Sreturn e -> Sreturn (Option.map re e)
  | Sblock body -> Sblock (List.map rs body)
  | Sempty | Sbreak | Scontinue -> s

(* Splice statement-helper calls appearing as statements. *)
let rec inline_void_stmt ~name ~params ~body (s : stmt) : stmt list =
  let rs s = inline_void_stmt ~name ~params ~body s in
  let block s = match rs s with [ one ] -> one | many -> Sblock many in
  match s with
  | Sexpr (Call (None, n, args))
    when n = name
         && List.length args = List.length params
         && List.for_all is_pure_arg args ->
      (* Bind the parameters as fresh declarations, then the body. *)
      let binds =
        List.map2
          (fun (p : param) a ->
            Sdecl [ { d_type = p.p_type; d_name = p.p_name; d_init = Some a } ])
          params args
      in
      [ Sblock (binds @ body) ]
  | Sblock b -> [ Sblock (List.concat_map rs b) ]
  | Sif (c, t, e) -> [ Sif (c, block t, Option.map block e) ]
  | Swhile (c, b) -> [ Swhile (c, block b) ]
  | Sdo (b, c) -> [ Sdo (block b, c) ]
  | Sfor (init, cond, upd, b) -> [ Sfor (init, cond, upd, block b) ]
  | Sswitch (scr, cases) ->
      [
        Sswitch
          ( scr,
            List.map
              (fun k -> { k with case_body = List.concat_map rs k.case_body })
              cases );
      ]
  | Sempty | Sexpr _ | Sdecl _ | Sbreak | Scontinue | Sreturn _ -> [ s ]

(** Inline the given helper into every other method of the program and
    drop it.  No-op (returns [None]) when the helper is not a simple
    expression/statement helper or is recursive. *)
let inline_helper (prog : program) (helper_name : string) : program option =
  match
    List.find_opt (fun m -> m.m_name = helper_name) prog.methods
  with
  | None -> None
  | Some helper ->
      if List.exists (stmt_calls_method helper_name) helper.m_body then None
      else
        let params = List.map (fun p -> p.p_name) helper.m_params in
        let rewrite (m : meth) =
          if m.m_name = helper_name then m
          else
            match expression_helper helper with
            | Some body ->
                {
                  m with
                  m_body =
                    List.map
                      (inline_expr_stmt ~name:helper_name ~params ~body)
                      m.m_body;
                }
            | None -> (
                match statement_helper helper with
                | Some body ->
                    {
                      m with
                      m_body =
                        List.concat_map
                          (inline_void_stmt ~name:helper_name
                             ~params:helper.m_params ~body)
                          m.m_body;
                    }
                | None -> m)
        in
        if expression_helper helper = None && statement_helper helper = None
        then None
        else
          let methods = List.map rewrite prog.methods in
          (* Drop the helper only if no residual calls remain. *)
          if
            List.exists
              (fun m ->
                m.m_name <> helper_name
                && List.exists (stmt_calls_method helper_name) m.m_body)
              methods
          then Some { methods }
          else
            Some
              {
                methods =
                  List.filter (fun m -> m.m_name <> helper_name) methods;
              }

(** Inline every helper that is not among the expected method names —
    the grader's preprocessing for submissions with extra student-invented
    helpers. *)
let inline_unexpected ~expected (prog : program) : program =
  List.fold_left
    (fun acc (m : meth) ->
      if List.mem m.m_name expected then acc
      else match inline_helper acc m.m_name with Some p -> p | None -> acc)
    prog prog.methods
