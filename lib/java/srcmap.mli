(** Source-position side table for AST nodes.

    The AST constructors carry no positions (they are pattern-matched in
    dozens of places and round-tripped through {!Pretty}); instead the
    parser can record where each statement, declarator and method began
    into a side table keyed by the node's *physical* identity.  Lookups
    on an AST that was not parsed with recording on simply return
    [None].

    Caveat: the constant constructors [Sbreak], [Scontinue] and [Sempty]
    are physically shared atoms, so all occurrences of each share one
    slot — the table keeps the position of the last one parsed.  The
    analyses that need positions for those forms resolve them through
    the enclosing statement instead. *)

type pos = { line : int; col : int }
(** 1-based, as produced by {!Lexer.tokenize}. *)

type t

val create : unit -> t

val record_stmt : t -> Ast.stmt -> pos -> unit
val record_decl : t -> Ast.var_decl -> pos -> unit
val record_meth : t -> Ast.meth -> pos -> unit

val stmt_pos : t -> Ast.stmt -> pos option
val decl_pos : t -> Ast.var_decl -> pos option
val meth_pos : t -> Ast.meth -> pos option
