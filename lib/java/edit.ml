(** Single-edit vocabulary.  See edit.mli. *)

open Ast

type kind =
  | Cmp_flip
  | Const_tweak
  | Arith_swap
  | Logic_swap
  | Assign_swap
  | Incdec_flip
  | Cond_negate

let kind_slug = function
  | Cmp_flip -> "cmp-flip"
  | Const_tweak -> "const-tweak"
  | Arith_swap -> "arith-swap"
  | Logic_swap -> "logic-swap"
  | Assign_swap -> "assign-swap"
  | Incdec_flip -> "incdec-flip"
  | Cond_negate -> "cond-negate"

type site = {
  s_id : int;
  s_kind : kind;
  s_meth : string;
  s_pos : Srcmap.pos option;
  s_before : string;
  s_after : string;
  s_node : int;
  s_repl : Ast.expr;
}

(* ------------------------------------------------------------------ *)
(* The catalog: alternatives of a single node                          *)

let binop_swaps = function
  | Add -> [ (Arith_swap, Sub) ]
  | Sub -> [ (Arith_swap, Add) ]
  | Mul -> [ (Arith_swap, Div) ]
  | Div -> [ (Arith_swap, Mul) ]
  | Lt -> [ (Cmp_flip, Le); (Cmp_flip, Gt) ]
  | Le -> [ (Cmp_flip, Lt); (Cmp_flip, Ge) ]
  | Gt -> [ (Cmp_flip, Ge); (Cmp_flip, Lt) ]
  | Ge -> [ (Cmp_flip, Gt); (Cmp_flip, Le) ]
  | Eq -> [ (Cmp_flip, Ne) ]
  | Ne -> [ (Cmp_flip, Eq) ]
  | And -> [ (Logic_swap, Or) ]
  | Or -> [ (Logic_swap, And) ]
  | Mod | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr -> []

let assign_swaps = function
  | Add_eq -> [ (Assign_swap, Sub_eq) ]
  | Sub_eq -> [ (Assign_swap, Add_eq) ]
  | Mul_eq -> [ (Assign_swap, Div_eq) ]
  | Div_eq -> [ (Assign_swap, Mul_eq) ]
  | Set | Mod_eq -> []

let incdec_flip = function
  | Pre_incr -> Pre_decr
  | Pre_decr -> Pre_incr
  | Post_incr -> Post_decr
  | Post_decr -> Post_incr

(* Parsed code never holds a negative [Int_lit] — [-1] is
   [Unary (Neg, Int_lit 1)] — so a tweak below zero must build that
   form, or the edited tree would not survive the pretty/parse round
   trip. *)
let int_lit n = if n < 0 then Unary (Neg, Int_lit (-n)) else Int_lit n

(* Replacements for one node; [guard] marks the top node of an
   if/while/do/for/ternary condition, the only place condition negation
   applies. *)
let alternatives ~guard e =
  let swaps =
    match e with
    | Binary (op, a, b) ->
        List.map (fun (k, op') -> (k, Binary (op', a, b))) (binop_swaps op)
    | Int_lit n -> [ (Const_tweak, int_lit (n + 1)); (Const_tweak, int_lit (n - 1)) ]
    | Assign (op, lhs, rhs) ->
        List.map (fun (k, op') -> (k, Assign (op', lhs, rhs))) (assign_swaps op)
    | Incdec (d, t) -> [ (Incdec_flip, Incdec (incdec_flip d, t)) ]
    | _ -> []
  in
  if not guard then swaps
  else
    swaps
    @ [
        (match e with
        | Unary (Not, inner) -> (Cond_negate, inner)
        | _ -> (Cond_negate, Unary (Not, e)));
      ]

(* ------------------------------------------------------------------ *)
(* Shared pre-order walk                                               *)

let rec expr_size e =
  1
  +
  match e with
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
  | Var _ ->
      0
  | Field (b, _) | Unary (_, b) | Incdec (_, b) | Cast (_, b) -> expr_size b
  | Index (a, i) -> expr_size a + expr_size i
  | Call (recv, _, args) ->
      (match recv with None -> 0 | Some r -> expr_size r)
      + List.fold_left (fun acc a -> acc + expr_size a) 0 args
  | New (_, args) | New_array (_, args) | Array_lit args ->
      List.fold_left (fun acc a -> acc + expr_size a) 0 args
  | Binary (_, a, b) | Assign (_, a, b) -> expr_size a + expr_size b
  | Ternary (a, b, c) -> expr_size a + expr_size b + expr_size c

(* One traversal serves both enumeration and application: [visit] sees
   every expression node with its pre-order index, enclosing method and
   position, and guard flag.  Returning [Some r] replaces the node
   (children are not descended into; the counter still advances past the
   original subtree, so indices of later nodes are unchanged). *)
let map_program ?srcmap ~visit prog =
  let n = ref 0 in
  let rec ex meth pos ~guard e =
    let i = !n in
    incr n;
    match visit i ~meth ~pos ~guard e with
    | Some r ->
        n := i + expr_size e;
        r
    | None -> (
        let sub = ex meth pos ~guard:false in
        match e with
        | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
        | Null_lit | Var _ ->
            e
        | Field (b, f) -> Field (sub b, f)
        | Index (a, ix) ->
            let a = sub a in
            Index (a, sub ix)
        | Call (recv, name, args) ->
            let recv = Option.map sub recv in
            Call (recv, name, List.map sub args)
        | New (t, args) -> New (t, List.map sub args)
        | New_array (t, dims) -> New_array (t, List.map sub dims)
        | Array_lit elts -> Array_lit (List.map sub elts)
        | Unary (op, b) -> Unary (op, sub b)
        | Incdec (d, b) -> Incdec (d, sub b)
        | Binary (op, a, b) ->
            let a = sub a in
            Binary (op, a, sub b)
        | Assign (op, lhs, rhs) ->
            let lhs = sub lhs in
            Assign (op, lhs, sub rhs)
        | Ternary (c, t, f) ->
            let c = ex meth pos ~guard:true c in
            let t = sub t in
            Ternary (c, t, sub f)
        | Cast (t, b) -> Cast (t, sub b))
  in
  let stmt_pos s inherited =
    match srcmap with
    | None -> inherited
    | Some m -> (
        match Srcmap.stmt_pos m s with Some p -> Some p | None -> inherited)
  in
  let decl_pos d inherited =
    match srcmap with
    | None -> inherited
    | Some m -> (
        match Srcmap.decl_pos m d with Some p -> Some p | None -> inherited)
  in
  let map_decl meth inherited d =
    let pos = decl_pos d inherited in
    { d with d_init = Option.map (ex meth pos ~guard:false) d.d_init }
  in
  let rec st meth inherited s =
    let pos = stmt_pos s inherited in
    match s with
    | Sdecl decls -> Sdecl (List.map (map_decl meth pos) decls)
    | Sexpr e -> Sexpr (ex meth pos ~guard:false e)
    | Sif (c, t, e) ->
        let c = ex meth pos ~guard:true c in
        let t = st meth pos t in
        Sif (c, t, Option.map (st meth pos) e)
    | Swhile (c, b) ->
        let c = ex meth pos ~guard:true c in
        Swhile (c, st meth pos b)
    | Sdo (b, c) ->
        let b = st meth pos b in
        Sdo (b, ex meth pos ~guard:true c)
    | Sfor (init, cond, upd, body) ->
        let init =
          match init with
          | None -> None
          | Some (For_decl decls) ->
              Some (For_decl (List.map (map_decl meth pos) decls))
          | Some (For_exprs es) ->
              Some (For_exprs (List.map (ex meth pos ~guard:false) es))
        in
        let cond = Option.map (ex meth pos ~guard:true) cond in
        let upd = List.map (ex meth pos ~guard:false) upd in
        Sfor (init, cond, upd, st meth pos body)
    | Sswitch (scrut, cases) ->
        let scrut = ex meth pos ~guard:false scrut in
        Sswitch
          ( scrut,
            List.map
              (fun c ->
                {
                  case_label =
                    Option.map (ex meth pos ~guard:false) c.case_label;
                  case_body = List.map (st meth pos) c.case_body;
                })
              cases )
    | Sreturn e -> Sreturn (Option.map (ex meth pos ~guard:false) e)
    | Sblock body -> Sblock (List.map (st meth pos) body)
    | Sbreak | Scontinue | Sempty -> s
  in
  {
    methods =
      List.map
        (fun m ->
          let inherited =
            match srcmap with None -> None | Some sm -> Srcmap.meth_pos sm m
          in
          { m with m_body = List.map (st m.m_name inherited) m.m_body })
        prog.methods;
  }

let enumerate ?srcmap prog =
  let sites = ref [] in
  let next = ref 0 in
  let visit i ~meth ~pos ~guard e =
    List.iter
      (fun (k, repl) ->
        sites :=
          {
            s_id = !next;
            s_kind = k;
            s_meth = meth;
            s_pos = pos;
            s_before = Pretty.expr e;
            s_after = Pretty.expr repl;
            s_node = i;
            s_repl = repl;
          }
          :: !sites;
        incr next)
      (alternatives ~guard e);
    None
  in
  ignore (map_program ?srcmap ~visit prog);
  List.rev !sites

let apply prog site =
  let visit i ~meth:_ ~pos:_ ~guard:_ _ =
    if i = site.s_node then Some site.s_repl else None
  in
  map_program ~visit prog
