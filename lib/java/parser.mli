(** Recursive-descent parser for the Java subset.

    Accepts either a bare sequence of method declarations (the form
    student submissions take in the paper) or methods wrapped in one or
    more [class X { ... }] declarations; [import] lines and access
    modifiers are accepted and ignored. *)

exception Parse_error of string * int * int
(** message, line, column (1-based) *)

val parse_program : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_program_located : string -> Ast.program * Srcmap.t
(** Like {!parse_program}, additionally recording where every statement,
    declarator and method begins.  The plain entry points skip the
    recording entirely, so they cost nothing extra. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression; the whole input must be consumed. *)

val parse_statement : string -> Ast.stmt
(** Parse a single statement (blocks allowed). *)
