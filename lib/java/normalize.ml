(** Source-level normalizations (the paper's §VII future work: "our
    patterns will support else expressions … by computing the functional
    equivalence, i.e., transforming else into if (i %% 2 == 1)").

    [flip_negated_else] rewrites the polarity of if/else statements whose
    condition is a negation so the knowledge base's positive-form patterns
    apply:

    - [if (a != b) S1 else S2]  →  [if (a == b) S2 else S1]
    - [if (!c) S1 else S2]      →  [if (c) S2 else S1]
    - [if (x % m == k) S1 else S2] is left alone (already positive).

    The rewrite is semantics-preserving, so grading the normalized
    program is grading the original.  It is exposed as an opt-in
    preprocessing step (see {!Jfeed_core.Grader.grade} callers and the
    ablation benchmark). *)

open Ast

let negate_cond = function
  | Binary (Ne, a, b) -> Some (Binary (Eq, a, b))
  | Unary (Not, c) -> Some c
  | _ -> None

let rec norm_stmt (s : stmt) : stmt =
  match s with
  | Sif (cond, then_, Some else_) -> (
      let then_ = norm_stmt then_ in
      let else_ = norm_stmt else_ in
      match negate_cond cond with
      | Some cond' -> Sif (cond', else_, Some then_)
      | None -> Sif (cond, then_, Some else_))
  | Sif (cond, then_, None) -> Sif (cond, norm_stmt then_, None)
  | Sblock body -> Sblock (List.map norm_stmt body)
  | Swhile (c, b) -> Swhile (c, norm_stmt b)
  | Sdo (b, c) -> Sdo (norm_stmt b, c)
  | Sfor (init, cond, upd, b) -> Sfor (init, cond, upd, norm_stmt b)
  | Sswitch (scr, cases) ->
      Sswitch
        ( scr,
          List.map
            (fun k -> { k with case_body = List.map norm_stmt k.case_body })
            cases )
  | Sempty | Sexpr _ | Sdecl _ | Sbreak | Scontinue | Sreturn _ -> s

(** Flip negated if/else statements throughout a program. *)
let flip_negated_else (p : program) : program =
  { methods = List.map (fun m -> { m with m_body = List.map norm_stmt m.m_body }) p.methods }

(* ------------------------------------------------------------------ *)
(* α-renaming.

   [alpha_rename_with name] rewrites every program variable of every
   method to [name i], where [i] is the variable's discovery index in a
   deterministic structural walk (parameters first, then the body in
   source order).  Two methods that differ only in how the student named
   their variables therefore rename to the *same* program — the property
   the serving tier's content-addressed result cache keys on
   ({!Jfeed_service.Normalize}) — and renaming with a fresh-name
   generator yields an α-equivalent mutant ({!Jfeed_gen.Mutate}).

   Only program variables are touched: class names (the capitalization
   heuristic {!Ast.is_class_name}), field selectors, and method names —
   both declarations and call sites, so helper-method wiring survives —
   are left alone.  The walk renames binding and use sites alike, so a
   name is mapped once and consistently; Java shadowing inside disjoint
   blocks collapses to one name, which can only merge α-distinct
   programs *before* renaming, never split α-equivalent ones. *)

let alpha_rename_with (name : int -> string) (p : program) : program =
  let rename_method (m : meth) : meth =
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let canon x =
      if is_class_name x then x
      else
        match Hashtbl.find_opt tbl x with
        | Some y -> y
        | None ->
            let y = name !next in
            incr next;
            Hashtbl.add tbl x y;
            y
    in
    let rec expr (e : expr) : expr =
      match e with
      | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
      | Null_lit ->
          e
      | Var x -> Var (canon x)
      | Field (e1, f) -> Field (expr e1, f)
      | Index (e1, e2) -> Index (expr e1, expr e2)
      | Call (recv, f, args) ->
          Call (Option.map expr recv, f, List.map expr args)
      | New (t, args) -> New (t, List.map expr args)
      | New_array (t, dims) -> New_array (t, List.map expr dims)
      | Array_lit elts -> Array_lit (List.map expr elts)
      | Unary (op, e1) -> Unary (op, expr e1)
      | Incdec (op, e1) -> Incdec (op, expr e1)
      | Binary (op, e1, e2) -> Binary (op, expr e1, expr e2)
      | Assign (op, e1, e2) -> Assign (op, expr e1, expr e2)
      | Ternary (c, t, f) -> Ternary (expr c, expr t, expr f)
      | Cast (t, e1) -> Cast (t, expr e1)
    in
    let decl (d : var_decl) : var_decl =
      (* Bind the declared name before walking the initializer, matching
         declaration-before-use order. *)
      let d_name = canon d.d_name in
      { d with d_name; d_init = Option.map expr d.d_init }
    in
    let rec stmt (s : stmt) : stmt =
      match s with
      | Sdecl ds -> Sdecl (List.map decl ds)
      | Sexpr e -> Sexpr (expr e)
      | Sif (c, t, f) -> Sif (expr c, stmt t, Option.map stmt f)
      | Swhile (c, b) -> Swhile (expr c, stmt b)
      | Sdo (b, c) -> Sdo (stmt b, expr c)
      | Sfor (init, cond, upd, b) ->
          let init =
            Option.map
              (function
                | For_decl ds -> For_decl (List.map decl ds)
                | For_exprs es -> For_exprs (List.map expr es))
              init
          in
          Sfor (init, Option.map expr cond, List.map expr upd, stmt b)
      | Sswitch (scr, cases) ->
          Sswitch
            ( expr scr,
              List.map
                (fun k ->
                  {
                    case_label = Option.map expr k.case_label;
                    case_body = List.map stmt k.case_body;
                  })
                cases )
      | Sreturn e -> Sreturn (Option.map expr e)
      | Sblock body -> Sblock (List.map stmt body)
      | Sempty | Sbreak | Scontinue -> s
    in
    let m_params =
      List.map (fun q -> { q with p_name = canon q.p_name }) m.m_params
    in
    { m with m_params; m_body = List.map stmt m.m_body }
  in
  { methods = List.map rename_method p.methods }

(** Canonical α-renaming: every variable becomes [v0], [v1], … in
    discovery order.  Idempotent; α-equivalent methods map to identical
    trees. *)
let alpha_rename (p : program) : program =
  alpha_rename_with (fun i -> "v" ^ string_of_int i) p
