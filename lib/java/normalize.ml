(** Source-level normalizations (the paper's §VII future work: "our
    patterns will support else expressions … by computing the functional
    equivalence, i.e., transforming else into if (i %% 2 == 1)").

    [flip_negated_else] rewrites the polarity of if/else statements whose
    condition is a negation so the knowledge base's positive-form patterns
    apply:

    - [if (a != b) S1 else S2]  →  [if (a == b) S2 else S1]
    - [if (!c) S1 else S2]      →  [if (c) S2 else S1]
    - [if (x % m == k) S1 else S2] is left alone (already positive).

    The rewrite is semantics-preserving, so grading the normalized
    program is grading the original.  It is exposed as an opt-in
    preprocessing step (see {!Jfeed_core.Grader.grade} callers and the
    ablation benchmark). *)

open Ast

let negate_cond = function
  | Binary (Ne, a, b) -> Some (Binary (Eq, a, b))
  | Unary (Not, c) -> Some c
  | _ -> None

let rec norm_stmt (s : stmt) : stmt =
  match s with
  | Sif (cond, then_, Some else_) -> (
      let then_ = norm_stmt then_ in
      let else_ = norm_stmt else_ in
      match negate_cond cond with
      | Some cond' -> Sif (cond', else_, Some then_)
      | None -> Sif (cond, then_, Some else_))
  | Sif (cond, then_, None) -> Sif (cond, norm_stmt then_, None)
  | Sblock body -> Sblock (List.map norm_stmt body)
  | Swhile (c, b) -> Swhile (c, norm_stmt b)
  | Sdo (b, c) -> Sdo (norm_stmt b, c)
  | Sfor (init, cond, upd, b) -> Sfor (init, cond, upd, norm_stmt b)
  | Sswitch (scr, cases) ->
      Sswitch
        ( scr,
          List.map
            (fun k -> { k with case_body = List.map norm_stmt k.case_body })
            cases )
  | Sempty | Sexpr _ | Sdecl _ | Sbreak | Scontinue | Sreturn _ -> s

(** Flip negated if/else statements throughout a program. *)
let flip_negated_else (p : program) : program =
  { methods = List.map (fun m -> { m with m_body = List.map norm_stmt m.m_body }) p.methods }
