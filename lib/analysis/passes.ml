(** The five submission analysis passes.  See passes.mli. *)

open Jfeed_java
open Ast
module S = Set.Make (String)

let pass_ids =
  [ "use-before-init"; "dead-store"; "unreachable"; "missing-return";
    "suspicious-loop" ]

let quote x = "'" ^ x ^ "'"

(* Position helpers: every pass works with or without a source map. *)
let stmt_pos srcmap s = Option.bind srcmap (fun m -> Srcmap.stmt_pos m s)
let decl_pos srcmap d = Option.bind srcmap (fun m -> Srcmap.decl_pos m d)
let meth_pos srcmap m = Option.bind srcmap (fun sm -> Srcmap.meth_pos sm m)

(* ------------------------------------------------------------------ *)
(* Pass 1: use-before-init (definite assignment)                       *)

module Must = Dataflow.Forward (struct
  type t = S.t

  let join = S.inter
end)

let use_before_init ?srcmap (m : meth) =
  let diags = ref [] in
  let declared = Hashtbl.create 16 in
  let emit s x =
    diags :=
      Diagnostic.make ~pass:"use-before-init" ~severity:Error ~meth:m.m_name
        ?pos:(stmt_pos srcmap s)
        (Printf.sprintf "variable %s may be read before it is initialized"
           (quote x))
      :: !diags
  in
  let expr st s e =
    List.iter
      (fun x -> if Hashtbl.mem declared x && not (S.mem x st) then emit s x)
      (read_vars e);
    List.fold_left (fun st x -> S.add x st) st (assigned_vars e)
  in
  let decl st s (d : var_decl) =
    match d.d_init with
    | Some e ->
        let st = expr st s e in
        Hashtbl.replace declared d.d_name ();
        S.add d.d_name st
    | None ->
        Hashtbl.replace declared d.d_name ();
        st
  in
  let entry =
    List.fold_left (fun st p -> S.add p.p_name st) S.empty m.m_params
  in
  ignore (Must.stmts { expr; decl } entry m.m_body);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 2: dead-store / unused variable                                *)

(* Every variable a statement mentions, read or written, at any depth —
   used to conservatively invalidate pending stores when control flow
   gets involved. *)
let rec mentioned_vars s acc =
  let of_expr e acc =
    let acc = List.fold_left (fun a x -> S.add x a) acc (read_vars e) in
    List.fold_left (fun a x -> S.add x a) acc (assigned_vars e)
  in
  let of_decl (d : var_decl) acc =
    let acc = S.add d.d_name acc in
    match d.d_init with Some e -> of_expr e acc | None -> acc
  in
  match s with
  | Sempty | Sbreak | Scontinue -> acc
  | Sdecl ds -> List.fold_left (fun a d -> of_decl d a) acc ds
  | Sexpr e -> of_expr e acc
  | Sreturn (Some e) -> of_expr e acc
  | Sreturn None -> acc
  | Sblock b -> List.fold_left (fun a s -> mentioned_vars s a) acc b
  | Sif (c, t, f) ->
      let acc = of_expr c acc in
      let acc = mentioned_vars t acc in
      (match f with Some f -> mentioned_vars f acc | None -> acc)
  | Swhile (c, b) -> mentioned_vars b (of_expr c acc)
  | Sdo (b, c) -> mentioned_vars b (of_expr c acc)
  | Sfor (init, cond, update, b) ->
      let acc =
        match init with
        | None -> acc
        | Some (For_decl ds) -> List.fold_left (fun a d -> of_decl d a) acc ds
        | Some (For_exprs es) -> List.fold_left (fun a e -> of_expr e a) acc es
      in
      let acc = match cond with Some c -> of_expr c acc | None -> acc in
      let acc = List.fold_left (fun a e -> of_expr e a) acc update in
      mentioned_vars b acc
  | Sswitch (scrut, cases) ->
      let acc = of_expr scrut acc in
      List.fold_left
        (fun a c ->
          let a =
            match c.case_label with Some l -> of_expr l a | None -> a
          in
          List.fold_left (fun a s -> mentioned_vars s a) a c.case_body)
        acc cases

let dead_store ?srcmap (m : meth) =
  let diags = ref [] in
  let emit ?pos x =
    diags :=
      Diagnostic.make ~pass:"dead-store" ~severity:Warning ~meth:m.m_name ?pos
        (Printf.sprintf
           "value stored in %s is overwritten before it is ever read"
           (quote x))
      :: !diags
  in
  (* Scan each statement sequence independently: a pending plain store
     [x = e] is dead when the same sequence stores to [x] again with no
     read of [x] in between.  Any compound statement (branching, loops,
     switch) conservatively invalidates every variable it mentions, and
     pending stores are never carried past the end of a sequence, so the
     check has no false positives from control flow. *)
  let rec seq stmts =
    let pending : (string, Srcmap.pos option) Hashtbl.t = Hashtbl.create 8 in
    let clear_reads e =
      List.iter (Hashtbl.remove pending) (read_vars e)
    in
    let store x pos =
      (match Hashtbl.find_opt pending x with
      | Some prior -> emit ?pos:prior x
      | None -> ());
      Hashtbl.replace pending x pos
    in
    let step s =
      match s with
      | Sexpr (Assign (Set, Var x, rhs)) ->
          clear_reads rhs;
          (* a nested assignment inside the rhs is a store too — just
             invalidate, no verdict *)
          List.iter (Hashtbl.remove pending) (assigned_vars rhs);
          store x (stmt_pos srcmap s)
      | Sdecl ds ->
          List.iter
            (fun (d : var_decl) ->
              match d.d_init with
              | Some e ->
                  clear_reads e;
                  List.iter (Hashtbl.remove pending) (assigned_vars e);
                  let pos =
                    match decl_pos srcmap d with
                    | Some _ as p -> p
                    | None -> stmt_pos srcmap s
                  in
                  store d.d_name pos
              | None -> ())
            ds
      | Sexpr e ->
          clear_reads e;
          List.iter (Hashtbl.remove pending) (assigned_vars e)
      | Sreturn (Some e) -> clear_reads e
      | Sreturn None | Sbreak | Scontinue | Sempty -> ()
      | Sblock _ | Sif _ | Swhile _ | Sdo _ | Sfor _ | Sswitch _ ->
          S.iter (Hashtbl.remove pending) (mentioned_vars s S.empty);
          nested s
    in
    List.iter step stmts
  and nested s =
    match s with
    | Sblock b -> seq b
    | Sif (_, t, f) ->
        nested_or_seq t;
        Option.iter nested_or_seq f
    | Swhile (_, b) | Sfor (_, _, _, b) | Sdo (b, _) -> nested_or_seq b
    | Sswitch (_, cases) -> List.iter (fun c -> seq c.case_body) cases
    | _ -> ()
  and nested_or_seq s = match s with Sblock b -> seq b | s -> nested s in
  seq m.m_body;
  List.rev !diags

(* A local that no EPDG node ever reads: the def-use reading of the
   method (its program dependence graph) never consumes the variable. *)
let unused_vars ?srcmap (m : meth) =
  let epdg = Jfeed_pdg.Epdg.of_method m in
  let reads =
    Jfeed_graph.Digraph.fold_nodes epdg.graph ~init:S.empty
      ~f:(fun acc _ (info : Jfeed_pdg.Epdg.node_info) ->
        List.fold_left (fun a x -> S.add x a) acc (read_vars info.n_expr))
  in
  (* collect every declarator of the method, in source order *)
  let decls = ref [] in
  let rec go s =
    match s with
    | Sdecl ds -> decls := List.rev_append ds !decls
    | Sblock b -> List.iter go b
    | Sif (_, t, f) ->
        go t;
        Option.iter go f
    | Swhile (_, b) | Sdo (b, _) -> go b
    | Sfor (init, _, _, b) ->
        (match init with
        | Some (For_decl ds) -> decls := List.rev_append ds !decls
        | _ -> ());
        go b
    | Sswitch (_, cases) -> List.iter (fun c -> List.iter go c.case_body) cases
    | Sexpr _ | Sreturn _ | Sbreak | Scontinue | Sempty -> ()
  in
  List.iter go m.m_body;
  List.rev !decls
  |> List.filter (fun (d : var_decl) -> not (S.mem d.d_name reads))
  |> List.map (fun (d : var_decl) ->
         Diagnostic.make ~pass:"dead-store" ~severity:Warning ~meth:m.m_name
           ?pos:(decl_pos srcmap d)
           (Printf.sprintf "variable %s is never read" (quote d.d_name)))

(* ------------------------------------------------------------------ *)
(* Pass 3: unreachable code                                            *)

let unreachable ?srcmap (m : meth) =
  let diags = ref [] in
  let emit s msg =
    diags :=
      Diagnostic.make ~pass:"unreachable" ~severity:Warning ~meth:m.m_name
        ?pos:(stmt_pos srcmap s) msg
      :: !diags
  in
  let rec scan s =
    match s with
    | Sblock b -> scan_seq b
    | Sif (c, t, f) ->
        (match (c, f) with
        | Bool_lit false, _ ->
            emit t "this branch is unreachable (condition is always false)"
        | Bool_lit true, Some e ->
            emit e "this branch is unreachable (condition is always true)"
        | _ -> ());
        scan t;
        Option.iter scan f
    | Swhile (c, body) ->
        (match c with
        | Bool_lit false ->
            emit body "loop body is unreachable (condition is always false)"
        | _ -> ());
        scan body
    | Sfor (_, cond, _, body) ->
        (match cond with
        | Some (Bool_lit false) ->
            emit body "loop body is unreachable (condition is always false)"
        | _ -> ());
        scan body
    | Sdo (body, _) -> scan body
    | Sswitch (_, cases) -> List.iter (fun c -> scan_seq c.case_body) cases
    | Sdecl _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue | Sempty -> ()
  and scan_seq stmts =
    (* one verdict per sequence: the first statement that control cannot
       reach; nested statements are still scanned for their own issues *)
    let rec go emitted = function
      | [] -> ()
      | s :: rest ->
          scan s;
          let emitted =
            if (not emitted) && (not (Dataflow.completes s)) && rest <> []
            then begin
              (match rest with
              | r :: _ -> emit r "statement is unreachable"
              | [] -> ());
              true
            end
            else emitted
          in
          go emitted rest
    in
    go false stmts
  in
  scan_seq m.m_body;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 4: missing return                                              *)

let missing_return ?srcmap (m : meth) =
  if m.m_ret <> Tprim "void" && Dataflow.seq_completes m.m_body then
    [
      Diagnostic.make ~pass:"missing-return" ~severity:Error ~meth:m.m_name
        ?pos:(meth_pos srcmap m)
        (Printf.sprintf
           "method %s returns %s but can finish without returning a value"
           (quote m.m_name)
           (string_of_typ m.m_ret));
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Pass 5: suspicious loop                                             *)

let rec expr_has_call = function
  | Call _ -> true
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
  | Var _ ->
      false
  | Field (e, _) | Unary (_, e) | Incdec (_, e) | Cast (_, e) ->
      expr_has_call e
  | Index (e1, e2) | Binary (_, e1, e2) | Assign (_, e1, e2) ->
      expr_has_call e1 || expr_has_call e2
  | New (_, es) | New_array (_, es) | Array_lit es ->
      List.exists expr_has_call es
  | Ternary (c, t, f) ->
      expr_has_call c || expr_has_call t || expr_has_call f

let rec exits_early = function
  | Sbreak | Sreturn _ -> true
  | Sblock b -> List.exists exits_early b
  | Sif (_, t, f) ->
      exits_early t || (match f with Some f -> exits_early f | None -> false)
  | Swhile (_, b) | Sfor (_, _, _, b) | Sdo (b, _) -> exits_early b
  | Sswitch (_, cases) ->
      (* [break] in a case binds to the switch; only [return] escapes *)
      let rec returns = function
        | Sreturn _ -> true
        | Sblock b -> List.exists returns b
        | Sif (_, t, f) ->
            returns t
            || (match f with Some f -> returns f | None -> false)
        | Swhile (_, b) | Sfor (_, _, _, b) | Sdo (b, _) -> returns b
        | Sswitch (_, cs) ->
            List.exists (fun c -> List.exists returns c.case_body) cs
        | _ -> false
      in
      List.exists (fun c -> List.exists returns c.case_body) cases
  | Sdecl _ | Sexpr _ | Scontinue | Sempty -> false

(* Every variable the statement assigns, at any depth, including
   declared-with-initializer names (a shadowing redeclaration still
   updates the name the condition reads, under our name-based view). *)
let rec updated_vars s acc =
  let of_expr e acc =
    List.fold_left (fun a x -> S.add x a) acc (assigned_vars e)
  in
  let of_decl (d : var_decl) acc =
    let acc = S.add d.d_name acc in
    match d.d_init with Some e -> of_expr e acc | None -> acc
  in
  match s with
  | Sempty | Sbreak | Scontinue | Sreturn None -> acc
  | Sdecl ds -> List.fold_left (fun a d -> of_decl d a) acc ds
  | Sexpr e | Sreturn (Some e) -> of_expr e acc
  | Sblock b -> List.fold_left (fun a s -> updated_vars s a) acc b
  | Sif (c, t, f) ->
      let acc = of_expr c acc in
      let acc = updated_vars t acc in
      (match f with Some f -> updated_vars f acc | None -> acc)
  | Swhile (c, b) -> updated_vars b (of_expr c acc)
  | Sdo (b, c) -> updated_vars b (of_expr c acc)
  | Sfor (init, cond, update, b) ->
      let acc =
        match init with
        | None -> acc
        | Some (For_decl ds) -> List.fold_left (fun a d -> of_decl d a) acc ds
        | Some (For_exprs es) -> List.fold_left (fun a e -> of_expr e a) acc es
      in
      let acc = match cond with Some c -> of_expr c acc | None -> acc in
      let acc = List.fold_left (fun a e -> of_expr e a) acc update in
      updated_vars b acc
  | Sswitch (scrut, cases) ->
      let acc = of_expr scrut acc in
      List.fold_left
        (fun a c -> List.fold_left (fun a s -> updated_vars s a) a c.case_body)
        acc cases

let suspicious_loop ?srcmap (m : meth) =
  let diags = ref [] in
  let emit s vars =
    let noun =
      match vars with
      | [ v ] -> Printf.sprintf "%s, which the loop body never updates" (quote v)
      | vs ->
          Printf.sprintf "%s, none of which the loop body updates"
            (String.concat ", " (List.map quote vs))
    in
    diags :=
      Diagnostic.make ~pass:"suspicious-loop" ~severity:Warning ~meth:m.m_name
        ?pos:(stmt_pos srcmap s)
        (Printf.sprintf "loop condition only reads %s" noun)
      :: !diags
  in
  let check s cond body update =
    (* method calls in the condition can observe external state
       ([sc.hasNextInt()]); stay silent on those *)
    if not (expr_has_call cond) then begin
      let cond_vars = read_vars cond in
      if cond_vars <> [] && not (exits_early body) then begin
        let updated =
          List.fold_left
            (fun a e -> List.fold_left (fun a x -> S.add x a) a (assigned_vars e))
            (updated_vars body S.empty) update
        in
        if not (List.exists (fun v -> S.mem v updated) cond_vars) then
          emit s cond_vars
      end
    end
  in
  let rec scan s =
    match s with
    | Swhile (c, body) ->
        check s c body [];
        scan body
    | Sdo (body, c) ->
        check s c body [];
        scan body
    | Sfor (_, cond, update, body) ->
        (match cond with Some c -> check s c body update | None -> ());
        scan body
    | Sblock b -> List.iter scan b
    | Sif (_, t, f) ->
        scan t;
        Option.iter scan f
    | Sswitch (_, cases) -> List.iter (fun c -> List.iter scan c.case_body) cases
    | Sdecl _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue | Sempty -> ()
  in
  List.iter scan m.m_body;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

(* Totality: a pass that raises reports the failure as one diagnostic
   of its own pass id — analysis never takes the pipeline down. *)
let guard pass meth_name f =
  match f () with
  | diags -> diags
  | exception e ->
      [
        Diagnostic.make ~pass ~severity:Error ~meth:meth_name
          (Printf.sprintf "analysis failed: %s" (Printexc.to_string e));
      ]

let analyze_method ?srcmap (m : meth) =
  let runs =
    [
      ("use-before-init", fun () -> use_before_init ?srcmap m);
      ("dead-store", fun () -> dead_store ?srcmap m @ unused_vars ?srcmap m);
      ("unreachable", fun () -> unreachable ?srcmap m);
      ("missing-return", fun () -> missing_return ?srcmap m);
      ("suspicious-loop", fun () -> suspicious_loop ?srcmap m);
    ]
  in
  (* One [pass:<id>] span per pass per method when tracing — the
     analysis stage's own breakdown; untraced, span is just [f ()]. *)
  let tr = Jfeed_trace.Trace.current () in
  List.concat_map
    (fun (id, f) ->
      Jfeed_trace.Trace.span tr
        (if Jfeed_trace.Trace.enabled tr then "pass:" ^ id else "pass")
        (fun () ->
          let diags = guard id m.m_name f in
          Jfeed_trace.Trace.add_attr tr "diags"
            (string_of_int (List.length diags));
          diags))
    runs
  |> List.sort Diagnostic.compare

let analyze_program ?srcmap (p : program) =
  List.concat_map (analyze_method ?srcmap) p.methods

let analyze_source src =
  match Parser.parse_program_located src with
  | prog, srcmap -> analyze_program ~srcmap prog
  | exception Parser.Parse_error (msg, line, col) ->
      [
        Diagnostic.make ~pass:"parse" ~severity:Error
          ~pos:{ line; col }
          (Printf.sprintf "parse error: %s" msg);
      ]
  | exception Lexer.Lex_error (msg, line, col) ->
      [
        Diagnostic.make ~pass:"parse" ~severity:Error
          ~pos:{ line; col }
          (Printf.sprintf "lexical error: %s" msg);
      ]
  | exception e ->
      [
        Diagnostic.make ~pass:"parse" ~severity:Error
          (Printf.sprintf "analysis failed: %s" (Printexc.to_string e));
      ]

let count_by_pass diags =
  let counts = Hashtbl.create 8 in
  let extra = ref [] in
  List.iter
    (fun (d : Diagnostic.t) ->
      (match Hashtbl.find_opt counts d.pass with
      | None ->
          Hashtbl.add counts d.pass 1;
          if not (List.mem d.pass pass_ids) then extra := d.pass :: !extra
      | Some n -> Hashtbl.replace counts d.pass (n + 1)))
    diags;
  let of_id id =
    (id, match Hashtbl.find_opt counts id with Some n -> n | None -> 0)
  in
  List.map of_id pass_ids @ List.rev_map of_id !extra
