(** Knowledge-base linter.  See kb_lint.mli. *)

open Jfeed_core
module Template = Jfeed_exprmatch.Template
module S = Set.Make (String)

let pass_ids =
  [ "kb-structure"; "kb-unsat"; "kb-unknown-pattern"; "kb-dangling-ref";
    "kb-unbound-placeholder"; "kb-duplicate" ]

let diag ?(meth = "") pass msg =
  Diagnostic.make ~pass ~severity:Error ~meth msg

(* Placeholders of a feedback text, under the exact same scanning rules
   the template engine uses (a lone '%' — Java's modulo — is literal). *)
let placeholders text =
  match Template.exact_of text with
  | t -> Template.vars t
  | exception _ -> []

let quote x = "'" ^ x ^ "'"

(* Checks on one pattern, primary or variant.  [where] names it in
   messages ("pattern 'p_loop'" / "variant 'p_search_do' of
   'p_search_while'"). *)
let lint_pattern ~meth ~where (p : Pattern.t) =
  let out = ref [] in
  let emit pass msg = out := diag ~meth pass (where ^ ": " ^ msg) :: !out in
  (* validate's messages already name the pattern *)
  List.iter
    (fun problem -> out := diag ~meth "kb-structure" problem :: !out)
    (Pattern.validate p);
  (* EPDG construction gives Break nodes the text "break" or "continue"
     and nothing else; a Break-typed node whose template matches neither
     can never be satisfied by any submission. *)
  Array.iteri
    (fun i (n : Pattern.pnode) ->
      match n.pn_type with
      | Some Jfeed_pdg.Epdg.Break ->
          let can text = Template.matches n.exact ~gamma:[] text in
          if not (can "break" || can "continue") then
            emit "kb-unsat"
              (Printf.sprintf
                 "node %d is typed Break but its template %s matches neither \
                  \"break\" nor \"continue\" — no EPDG node can satisfy it"
                 i
                 (quote (Template.source n.exact)))
      | _ -> ())
    p.nodes;
  let vars = S.of_list (Pattern.vars p) in
  let check_fb what text =
    List.iter
      (fun x ->
        if not (S.mem x vars) then
          emit "kb-unbound-placeholder"
            (Printf.sprintf
               "%s placeholder %%%s%% is bound by none of the pattern's \
                variables"
               what x))
      (placeholders text)
  in
  check_fb "feedback (present)" p.fb_present;
  check_fb "feedback (missing)" p.fb_missing;
  Array.iteri
    (fun i (n : Pattern.pnode) ->
      Option.iter (check_fb (Printf.sprintf "node %d feedback (correct)" i))
        n.fb_correct;
      Option.iter (check_fb (Printf.sprintf "node %d feedback (incorrect)" i))
        n.fb_incorrect)
    p.nodes;
  List.rev !out

let lint_method (q : Grader.method_spec) =
  let meth = q.q_name in
  let out = ref [] in
  let emit d = out := d :: !out in
  let primaries = List.map fst q.q_patterns in
  let primary_ids = List.map (fun (p : Pattern.t) -> p.id) primaries in
  (* duplicate pattern ids *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then
        emit
          (diag ~meth "kb-duplicate"
             (Printf.sprintf "pattern id %s is declared twice" (quote id)))
      else Hashtbl.add seen id ())
    primary_ids;
  (* per-pattern checks; remember node counts and variable alphabets for
     the reference checks below *)
  let node_count = Hashtbl.create 8 in
  let var_set = Hashtbl.create 8 in
  let register (p : Pattern.t) =
    if not (Hashtbl.mem node_count p.id) then begin
      Hashtbl.add node_count p.id (Array.length p.nodes);
      Hashtbl.add var_set p.id (S.of_list (Pattern.vars p))
    end
  in
  List.iter
    (fun (p : Pattern.t) ->
      List.iter emit
        (lint_pattern ~meth ~where:("pattern " ^ quote p.id) p);
      register p)
    primaries;
  (* variants *)
  List.iter
    (fun (key, alts) ->
      if not (List.mem key primary_ids) then
        emit
          (diag ~meth "kb-unknown-pattern"
             (Printf.sprintf "variant table keyed by unknown pattern id %s"
                (quote key)));
      List.iter
        (fun (alt : Pattern.t) ->
          let where =
            Printf.sprintf "variant %s of %s" (quote alt.id) (quote key)
          in
          if List.mem alt.id primary_ids then
            emit
              (diag ~meth "kb-duplicate"
                 (Printf.sprintf "%s shadows a pattern with the same id" where));
          List.iter emit (lint_pattern ~meth ~where alt);
          (match Hashtbl.find_opt node_count key with
          | Some n when n <> Array.length alt.nodes ->
              emit
                (diag ~meth "kb-structure"
                   (Printf.sprintf
                      "%s has %d nodes but the primary has %d — constraint \
                       node indices cannot align"
                      where (Array.length alt.nodes) n))
          | _ -> ());
          register alt)
        alts)
    q.q_variants;
  (* constraints *)
  let known id = Hashtbl.mem node_count id in
  let check_index c_id pid u =
    match Hashtbl.find_opt node_count pid with
    | Some n when u < 0 || u >= n ->
        emit
          (diag ~meth "kb-dangling-ref"
             (Printf.sprintf
                "constraint %s refers to node %d of pattern %s, which has \
                 only %d node%s"
                (quote c_id) u (quote pid) n (if n = 1 then "" else "s")))
    | _ -> ()
  in
  List.iter
    (fun (c : Constr.t) ->
      let refs = Constr.referenced_patterns c in
      List.iter
        (fun pid ->
          if not (known pid) then
            emit
              (diag ~meth "kb-unknown-pattern"
                 (Printf.sprintf "constraint %s names unknown pattern id %s"
                    (quote c.c_id) (quote pid))))
        refs;
      (match c.kind with
      | Equality { pi; ui; pj; uj } ->
          check_index c.c_id pi ui;
          check_index c.c_id pj uj
      | Edge_exists { pi; ui; pj; uj; edge = _ } ->
          check_index c.c_id pi ui;
          check_index c.c_id pj uj
      | Containment { main; u; template; support } ->
          check_index c.c_id main u;
          let bound =
            List.fold_left
              (fun acc pid ->
                match Hashtbl.find_opt var_set pid with
                | Some vs -> S.union acc vs
                | None -> acc)
              S.empty (main :: support)
          in
          List.iter
            (fun x ->
              if not (S.mem x bound) then
                emit
                  (diag ~meth "kb-dangling-ref"
                     (Printf.sprintf
                        "constraint %s: containment template variable %%%s%% \
                         is bound by neither the main nor the supporting \
                         patterns"
                        (quote c.c_id) x)))
            (Template.vars template));
      (* feedback placeholders are instantiated from the referenced
         patterns' embeddings *)
      let bound =
        List.fold_left
          (fun acc pid ->
            match Hashtbl.find_opt var_set pid with
            | Some vs -> S.union acc vs
            | None -> acc)
          S.empty refs
      in
      let check_fb what text =
        List.iter
          (fun x ->
            if not (S.mem x bound) then
              emit
                (diag ~meth "kb-unbound-placeholder"
                   (Printf.sprintf
                      "constraint %s: %s placeholder %%%s%% is bound by none \
                       of the referenced patterns"
                      (quote c.c_id) what x)))
          (placeholders text)
      in
      check_fb "feedback (ok)" c.fb_ok;
      check_fb "feedback (fail)" c.fb_fail)
    q.q_constraints;
  List.rev !out

let lint_spec_unguarded (spec : Grader.spec) =
  let per_method = List.concat_map lint_method spec.a_methods in
  (* duplicate constraint ids anywhere in the spec *)
  let seen = Hashtbl.create 8 in
  let dups = ref [] in
  List.iter
    (fun (q : Grader.method_spec) ->
      List.iter
        (fun (c : Constr.t) ->
          if Hashtbl.mem seen c.c_id then
            dups :=
              diag ~meth:q.q_name "kb-duplicate"
                (Printf.sprintf "constraint id %s is declared twice"
                   (quote c.c_id))
              :: !dups
          else Hashtbl.add seen c.c_id ())
        q.q_constraints)
    spec.a_methods;
  per_method @ List.rev !dups

let lint_spec spec =
  match lint_spec_unguarded spec with
  | diags -> diags
  | exception e ->
      [
        diag "kb-structure"
          (Printf.sprintf "linter failed: %s" (Printexc.to_string e));
      ]

(* ------------------------------------------------------------------ *)
(* The deliberately broken fixture                                     *)

let broken_fixture : Grader.spec =
  let t = Template.exact_of in
  let p_loop : Pattern.t =
    {
      id = "p_loop";
      description = "counting loop (broken on purpose)";
      nodes =
        [|
          Pattern.node ~typ:Jfeed_pdg.Epdg.Cond (t "%i% < %n%");
          Pattern.node ~typ:Jfeed_pdg.Epdg.Assign (t "%i% = %i% + 1");
        |];
      (* (0, 5): endpoint absent from the pattern; (1, 1): self edge *)
      edges =
        [ (0, 5, Jfeed_pdg.Epdg.Data); (1, 1, Jfeed_pdg.Epdg.Ctrl) ];
      fb_present = "The loop counts with %i%.";
      (* %bound% is bound by no node template *)
      fb_missing = "No loop runs up to %bound%.";
    }
  in
  let p_loop_dup : Pattern.t =
    { p_loop with edges = []; fb_missing = "No loop found." }
  in
  let p_brk : Pattern.t =
    {
      id = "p_brk";
      description = "early exit (broken on purpose)";
      (* Break-typed node whose template can only match an assignment —
         structurally unsatisfiable *)
      nodes = [| Pattern.node ~typ:Jfeed_pdg.Epdg.Break (t "%x% = 0") |];
      edges = [];
      fb_present = "Stops early.";
      fb_missing = "Never stops early.";
    }
  in
  {
    a_id = "broken-fixture";
    a_title = "Deliberately malformed bundle (linter fixture)";
    a_methods =
      [
        {
          q_name = "compute";
          q_patterns = [ (p_loop, 1); (p_loop_dup, 1); (p_brk, 1) ];
          q_constraints =
            [
              (* references a pattern id that does not exist *)
              Constr.equality ~id:"cx_ghost" ~desc:"ghost reference"
                ("p_ghost", 0) ("p_loop", 0);
              (* node index beyond the referenced pattern's range *)
              Constr.equality ~id:"cx_range" ~desc:"index out of range"
                ~ok:"Aligned via %zz%."
                ("p_brk", 7) ("p_loop", 1);
              (* containment template variable bound by nobody *)
              Constr.containment ~id:"cx_free" ~desc:"free template variable"
                ("p_loop", 0)
                (t "%i% < %mystery%")
                [ "p_brk" ];
            ];
          q_variants =
            [
              (* keyed by an id the method does not define *)
              ("p_missing", [ { p_brk with id = "p_brk_alt" } ]);
            ];
        };
      ];
    enforce_headers = false;
  }
