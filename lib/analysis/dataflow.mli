(** A small forward dataflow framework over the Java-subset AST.

    The walker visits every expression and declarator of a statement
    list exactly once, threading an abstract state through in execution
    order and merging at control-flow joins with the domain's [join]:

    - [if]/[else]: both branches from the state after the condition,
      joined afterwards ([else] absent behaves like a no-op branch);
    - [while]/[for]: join of zero iterations and one iteration — the
      single-iteration reading the EPDG construction also uses;
    - [do]/[while]: the body runs at least once;
    - [switch]: cases fall through (each case entry is the join of the
      switch entry and the previous case's exit); the exit is the join
      of every case exit, plus the entry when there is no [default].

    [break]/[continue]/[return] pass the state through unchanged — the
    framework deliberately does not track abrupt-exit states, which is
    precise enough for the intraprocedural passes built on it. *)

module Forward (D : sig
  type t

  val join : t -> t -> t
end) : sig
  type hooks = {
    expr : D.t -> Jfeed_java.Ast.stmt -> Jfeed_java.Ast.expr -> D.t;
        (** called on every expression, with the enclosing statement *)
    decl : D.t -> Jfeed_java.Ast.stmt -> Jfeed_java.Ast.var_decl -> D.t;
        (** called on every declarator (its initializer is NOT walked by
            the framework — the hook decides) *)
  }

  val stmt : hooks -> D.t -> Jfeed_java.Ast.stmt -> D.t
  val stmts : hooks -> D.t -> Jfeed_java.Ast.stmt list -> D.t
end

(** {2 Normal-completion analysis}

    Shared by the unreachable-code and missing-return passes: can a
    statement (or statement sequence) complete normally, i.e. fall
    through to whatever follows it?  Follows JLS §14.22 on the subset,
    with loops over non-constant conditions always assumed able to
    complete. *)

val completes : Jfeed_java.Ast.stmt -> bool
val seq_completes : Jfeed_java.Ast.stmt list -> bool

val breaks_out : Jfeed_java.Ast.stmt -> bool
(** Does the statement contain a [break] that binds to the *enclosing*
    loop — i.e. one not nested inside an inner loop or [switch]? *)
