(** Structured diagnostics.  See diagnostic.mli. *)

type severity = Error | Warning

type t = {
  pass : string;
  severity : severity;
  meth : string;
  line : int;
  col : int;
  message : string;
}

let make ~pass ~severity ?(meth = "") ?pos message =
  let line, col =
    match pos with
    | Some (p : Jfeed_java.Srcmap.pos) -> (p.line, p.col)
    | None -> (0, 0)
  in
  { pass; severity; meth; line; col; message }

let string_of_severity = function Error -> "error" | Warning -> "warning"

let render d =
  let where =
    match (d.meth, d.line) with
    | "", 0 -> ""
    | "", _ -> Printf.sprintf "%d:%d: " d.line d.col
    | m, 0 -> Printf.sprintf "%s: " m
    | m, _ -> Printf.sprintf "%s:%d:%d: " m d.line d.col
  in
  Printf.sprintf "%s%s [%s] %s" where
    (string_of_severity d.severity)
    d.pass d.message

let to_json d =
  let esc = Jfeed_core.Feedback.json_escape in
  Printf.sprintf
    {|{"pass":"%s","severity":"%s","method":"%s","line":%d,"col":%d,"message":"%s"}|}
    (esc d.pass)
    (string_of_severity d.severity)
    (esc d.meth) d.line d.col (esc d.message)

let compare a b =
  let c = String.compare a.meth b.meth in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.pass b.pass in
        if c <> 0 then c else String.compare a.message b.message
