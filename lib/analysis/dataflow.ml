(** Forward dataflow over the AST + normal-completion analysis.  See
    dataflow.mli. *)

open Jfeed_java.Ast

module Forward (D : sig
  type t

  val join : t -> t -> t
end) =
struct
  type hooks = {
    expr : D.t -> stmt -> expr -> D.t;
    decl : D.t -> stmt -> var_decl -> D.t;
  }

  let rec stmt h st s =
    match s with
    | Sempty | Sbreak | Scontinue -> st
    | Sblock body -> stmts h st body
    | Sdecl ds -> List.fold_left (fun st d -> h.decl st s d) st ds
    | Sexpr e -> h.expr st s e
    | Sreturn (Some e) -> h.expr st s e
    | Sreturn None -> st
    | Sif (c, then_, else_) -> (
        let st = h.expr st s c in
        let st_t = stmt h st then_ in
        match else_ with
        | Some f -> D.join st_t (stmt h st f)
        | None -> D.join st_t st)
    | Swhile (c, body) ->
        (* zero iterations joined with one *)
        let st = h.expr st s c in
        D.join st (stmt h st body)
    | Sdo (body, c) ->
        (* the body runs at least once *)
        h.expr (stmt h st body) s c
    | Sfor (init, cond, update, body) ->
        let st =
          match init with
          | None -> st
          | Some (For_decl ds) ->
              List.fold_left (fun st d -> h.decl st s d) st ds
          | Some (For_exprs es) ->
              List.fold_left (fun st e -> h.expr st s e) st es
        in
        let st =
          match cond with Some c -> h.expr st s c | None -> st
        in
        let once =
          List.fold_left (fun st e -> h.expr st s e) (stmt h st body) update
        in
        D.join st once
    | Sswitch (scrut, cases) ->
        let entry = h.expr st s scrut in
        let has_default = List.exists (fun c -> c.case_label = None) cases in
        (* Cases fall through: each case starts from the join of the
           switch entry (jumped to directly) and the previous case's
           exit (fell through). *)
        let outs, _ =
          List.fold_left
            (fun (outs, prev) c ->
              let case_entry =
                match prev with
                | None -> entry
                | Some p -> D.join entry p
              in
              let case_entry =
                match c.case_label with
                | Some l -> h.expr case_entry s l
                | None -> case_entry
              in
              let out = stmts h case_entry c.case_body in
              (out :: outs, Some out))
            ([], None) cases
        in
        let seed = if has_default then None else Some entry in
        (match (outs, seed) with
        | [], _ -> entry
        | o :: os, None -> List.fold_left D.join o os
        | os, Some e -> List.fold_left D.join e os)

  and stmts h st body = List.fold_left (stmt h) st body
end

(* ------------------------------------------------------------------ *)
(* Normal completion (JLS §14.22 on the subset)                        *)

let rec breaks_out = function
  | Sbreak -> true
  | Sblock b -> List.exists breaks_out b
  | Sif (_, t, f) ->
      breaks_out t || (match f with Some f -> breaks_out f | None -> false)
  | Sdecl _ | Sexpr _ | Sempty | Scontinue | Sreturn _ -> false
  (* a [break] inside an inner loop or switch binds there, not here *)
  | Swhile _ | Sdo _ | Sfor _ | Sswitch _ -> false

let rec completes = function
  | Sreturn _ | Sbreak | Scontinue -> false
  | Sblock b -> seq_completes b
  | Sif (_, t, Some f) -> completes t || completes f
  | Sif (_, _, None) -> true
  | Swhile (Bool_lit true, body) -> breaks_out body
  | Swhile _ -> true
  | Sfor (_, (None | Some (Bool_lit true)), _, body) -> breaks_out body
  | Sfor _ -> true
  | Sdo (body, _) -> completes body || breaks_out body
  | Sswitch _ -> true
  | Sdecl _ | Sexpr _ | Sempty -> true

and seq_completes = function
  | [] -> true
  | s :: rest -> completes s && seq_completes rest
