(** Structured diagnostics: what every analysis pass and the KB linter
    emit.

    A diagnostic names the pass that produced it, a severity, the method
    (or KB object) it is about, a source position when one is known
    ([line = 0] means "no position"), and a human-readable message. *)

type severity = Error | Warning

type t = {
  pass : string;  (** stable pass id, e.g. ["use-before-init"] *)
  severity : severity;
  meth : string;  (** enclosing method name; [""] when not applicable *)
  line : int;  (** 1-based; 0 = unknown *)
  col : int;  (** 1-based; 0 = unknown *)
  message : string;
}

val make :
  pass:string ->
  severity:severity ->
  ?meth:string ->
  ?pos:Jfeed_java.Srcmap.pos ->
  string ->
  t

val string_of_severity : severity -> string

val render : t -> string
(** [method:line:col: severity [pass] message] — the position and method
    segments are elided when unknown. *)

val to_json : t -> string
(** One object with keys [pass], [severity], [method], [line], [col],
    [message] — in that order, pinned by [test/cram/analyze.t]. *)

val compare : t -> t -> int
(** Stable order: method, then position, then pass, then message. *)
