(** Knowledge-base linter (tentpole client 2).

    Static validation of a grading specification — the pattern bundles
    the paper's instructors author by hand.  A malformed bundle today
    fails *silently*: a dangling reference simply never matches and the
    student gets vacuous feedback.  The linter turns each authoring
    mistake into a diagnostic:

    - [kb-structure] — {!Jfeed_core.Pattern.validate} problems (edge
      endpoints out of range, self edges, no nodes, approximate
      variables outside the exact alphabet) and variants whose node
      count differs from their primary's;
    - [kb-unsat] — patterns no EPDG can ever satisfy: a [Break]-typed
      node whose exact template matches neither ["break"] nor
      ["continue"], the only texts EPDG construction gives such nodes;
    - [kb-unknown-pattern] — constraints or variant tables naming a
      pattern id the method does not define;
    - [kb-dangling-ref] — constraint node indices out of the referenced
      pattern's range, and containment templates using variables bound
      by neither the main nor the supporting patterns;
    - [kb-unbound-placeholder] — feedback templates with [%x%]
      placeholders that no embedding of the owning pattern(s) can bind;
    - [kb-duplicate] — duplicate pattern ids within a method, variant
      ids shadowing pattern ids, duplicate constraint ids in a spec.

    All diagnostics carry the expected-method name in [meth] (or [""]
    for spec-level problems); KB objects have no source positions. *)

val pass_ids : string list
(** The six stable linter pass ids, in canonical order. *)

val lint_spec : Jfeed_core.Grader.spec -> Diagnostic.t list
(** Total: never raises.  Empty = the spec is clean. *)

val broken_fixture : Jfeed_core.Grader.spec
(** A deliberately malformed spec exercising every check above — the
    negative fixture behind [jfeed lint-kb --fixture-broken] and the
    cram test. *)
