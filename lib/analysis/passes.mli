(** The submission analysis passes (tentpole client 1).

    Five intraprocedural passes over the AST + EPDG:

    - [use-before-init] — definite assignment: a declared local may be
      read on some path before any assignment reaches it (error);
    - [dead-store] — a value stored into a variable is overwritten
      before any read, or a local is never read at all (warning; the
      never-read check reads uses off the method's EPDG def-use nodes);
    - [unreachable] — statements after [return]/[break]/[continue], and
      branches/bodies guarded by constant-false (or constant-true)
      conditions (warning);
    - [missing-return] — a non-[void] method can complete normally
      without returning a value (error);
    - [suspicious-loop] — a loop whose condition reads only variables
      the body never updates, with no [break]/[return] escape and no
      method call in the condition (warning).

    Every entry point is total: a pass that raises is reported as a
    single diagnostic of that pass rather than an exception. *)

val pass_ids : string list
(** The five stable pass ids, in canonical order. *)

val analyze_method :
  ?srcmap:Jfeed_java.Srcmap.t -> Jfeed_java.Ast.meth -> Diagnostic.t list

val analyze_program :
  ?srcmap:Jfeed_java.Srcmap.t -> Jfeed_java.Ast.program -> Diagnostic.t list
(** Methods in source order; within a method, diagnostics sorted by
    position, then pass id, then message. *)

val analyze_source : string -> Diagnostic.t list
(** Parse with positions and analyze.  Total: lexer/parser failures come
    back as a single [parse] diagnostic (severity error) instead of an
    exception. *)

val count_by_pass : Diagnostic.t list -> (string * int) list
(** Diagnostic counts keyed by the five pass ids, in {!pass_ids} order,
    every pass present (count 0 included); diagnostics from other passes
    (e.g. [parse]) are appended after, in first-seen order. *)
