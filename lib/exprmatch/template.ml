type piece = Lit of string  (** already regex text *) | Placeholder of string

type t = {
  pieces : piece list;
  vars : string list;
  source : string;
  raw_pieces : piece list option;
      (* [exact_of] only: the same pieces with *unquoted* literals.  A
         fully-bound exact template is a literal string — matching it is
         string equality, no regex build, memo probe or execution. *)
}

let vars t = t.vars
let source t = t.source

(* Split "foo %x% bar" into [Lit "foo "; Placeholder "x"; Lit " bar"],
   applying [quote] to the literal parts. *)
let split ~quote text =
  let n = String.length text in
  let pieces = ref [] in
  let vars = ref [] in
  let buf = Buffer.create 16 in
  let flush_lit () =
    if Buffer.length buf > 0 then begin
      pieces := Lit (quote (Buffer.contents buf)) :: !pieces;
      Buffer.clear buf
    end
  in
  (* A '%' opens a placeholder only when it is immediately followed by an
     identifier and a closing '%' ([%x%], [%idx%]); any other '%' — e.g.
     Java's modulo operator — is literal text. *)
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  let placeholder_at i =
    if i + 1 >= n || not (is_ident_char text.[i + 1]) then None
    else
      let j = ref (i + 1) in
      while !j < n && is_ident_char text.[!j] do
        incr j
      done;
      if !j < n && text.[!j] = '%' then Some (String.sub text (i + 1) (!j - i - 1), !j)
      else None
  in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '%' then begin
      match placeholder_at !i with
      | Some (x, j) ->
          flush_lit ();
          pieces := Placeholder x :: !pieces;
          if not (List.mem x !vars) then vars := x :: !vars;
          i := j + 1
      | None ->
          Buffer.add_char buf '%';
          incr i
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  flush_lit ();
  (List.rev !pieces, List.rev !vars)

let check_syntax pieces source =
  let dummy =
    String.concat ""
      (List.map (function Lit s -> s | Placeholder _ -> "dummy") pieces)
  in
  match Re.Pcre.re dummy with
  | (_ : Re.t) -> ()
  | exception _ ->
      invalid_arg (Printf.sprintf "Template: invalid regex %S" source)

let exact_of text =
  let pieces, vars = split ~quote:Re.Pcre.quote text in
  let raw_pieces, _ = split ~quote:Fun.id text in
  { pieces; vars; source = text; raw_pieces = Some raw_pieces }

let regex_of text =
  let pieces, vars = split ~quote:Fun.id text in
  check_syntax pieces text;
  { pieces; vars; source = text; raw_pieces = None }

let contains_of text =
  let pieces, vars = split ~quote:Re.Pcre.quote text in
  let pieces = (Lit {|(.*[^A-Za-z0-9_$])?|} :: pieces) @ [ Lit {|([^A-Za-z0-9_$].*)?|} ] in
  { pieces; vars; source = ".*" ^ text ^ ".*"; raw_pieces = None }

(* A placeholder with no binding matches any single identifier. *)
let any_identifier = {|[A-Za-z_$][A-Za-z0-9_$]*|}

(* Domain-local: the parallel batch driver grades submissions on several
   domains at once, and a shared Hashtbl would race (corrupting buckets
   is undefined behaviour under OCaml 5).  Each domain memoizes its own
   compilations — slightly more compile work, zero synchronization on
   the matcher's hottest string path. *)
let memo_key : (string, Re.re) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

(* The set of distinct instantiated regexes is (templates x submission
   variable names); an unbounded stream of fresh names would grow the
   memo forever in a long-lived grading service, so reset it past a
   generous bound. *)
let memo_cap = 65_536

let compiled regex_text =
  let memo = Domain.DLS.get memo_key in
  match Hashtbl.find_opt memo regex_text with
  | Some re -> re
  | None ->
      if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
      let re = Re.Pcre.re ~flags:[ `ANCHORED ] (regex_text ^ "$") in
      let re = Re.compile re in
      Hashtbl.add memo regex_text re;
      re

(* Fast path for the matcher's hottest call: an exact template with every
   placeholder bound is a literal string, and Re's anchored [lit$] accepts
   exactly that string (plus a trailing-newline variant [$] tolerates,
   which cannot arise when [c] is newline-free — node texts are
   single-line, but the guard keeps the fallback authoritative). *)
let matches_literal raw_pieces ~gamma c =
  if String.contains c '\n' then None
  else
    let buf = Buffer.create (String.length c) in
    let bound =
      List.for_all
        (function
          | Lit s ->
              Buffer.add_string buf s;
              true
          | Placeholder x -> (
              match List.assoc_opt x gamma with
              | Some y ->
                  Buffer.add_string buf y;
                  true
              | None -> false))
        raw_pieces
    in
    if bound then Some (String.equal (Buffer.contents buf) c) else None

let matches t ~gamma c =
  match
    match t.raw_pieces with
    | Some rp -> matches_literal rp ~gamma c
    | None -> None
  with
  | Some r -> r
  | None ->
  let regex_text =
    String.concat ""
      (List.map
         (function
           | Lit s -> s
           | Placeholder x -> (
               match List.assoc_opt x gamma with
               | Some y -> Re.Pcre.quote y
               | None -> any_identifier))
         t.pieces)
  in
  Re.execp (compiled regex_text) c

let instantiate text ~gamma =
  let pieces, _ = split ~quote:Fun.id text in
  String.concat ""
    (List.map
       (function
         | Lit s -> s
         | Placeholder x -> (
             match List.assoc_opt x gamma with Some y -> y | None -> x))
       pieces)
