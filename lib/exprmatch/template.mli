(** Incomplete Java expressions (paper Definition 4 and Definition 6).

    A template is matched against the *canonical rendering* of a submission
    expression (see {!Jfeed_java.Pretty.expr}).  Following the paper, the
    matching engine is regular expressions: a template is a regex in which
    [%x%] placeholders stand for pattern variables; before matching, each
    placeholder is replaced by the (regex-quoted) submission variable the
    mapping γ assigns to it.  The match is anchored: the template must
    cover the whole canonical rendering — "incompleteness" is expressed
    inside the template with regex wildcards.

    Two construction modes:
    - {!exact_of} treats everything outside placeholders as literal Java
      text (metacharacters are quoted), e.g. [exact_of "%x% = 0"];
    - {!regex_of} keeps the text as a raw regex, e.g.
      [regex_of "%x% (<|<=) %s%\\.length"]. *)

type t

val vars : t -> string list
(** Placeholder variables, in first-occurrence order, without duplicates. *)

val source : t -> string
(** The template text as written (with placeholders). *)

val exact_of : string -> t
(** Literal Java text with [%x%] placeholders.  Raises [Invalid_argument]
    on an unterminated placeholder. *)

val regex_of : string -> t
(** Raw regex with [%x%] placeholders.  Raises [Invalid_argument] on an
    unterminated placeholder or a regex syntax error (checked eagerly with
    all placeholders replaced by a dummy identifier). *)

val contains_of : string -> t
(** [contains_of s] matches any rendering that contains the literal text
    [s] (with placeholders substituted) at token boundaries. *)

val matches : t -> gamma:(string * string) list -> string -> bool
(** [matches t ~gamma c] — does the template, with every placeholder [%x%]
    replaced by [List.assoc x gamma], match the canonical rendering [c]?
    Placeholders without a binding in [gamma] are replaced by a wildcard
    that matches any single identifier (this is what lets feedback still be
    computed when a variable was never bound).  Compiled regexes are
    memoized. *)

val instantiate : string -> gamma:(string * string) list -> string
(** Substitute placeholders in a *feedback text* (no regex interpretation):
    unbound placeholders are kept as the bare variable name. *)
