(** Domain worker pool: chunked distribution, deterministic merge.
    See pool.mli for the contract. *)

let chunks ~n ~jobs =
  if n <= 0 then []
  else begin
    let jobs = max 1 jobs in
    (* About 4 chunks per worker: small enough that the atomic cursor
       rebalances around expensive items, large enough that claiming a
       chunk (one fetch-and-add) is noise. *)
    let size = max 1 (n / (jobs * 4)) in
    let rec go start acc =
      if start >= n then List.rev acc
      else
        let len = min size (n - start) in
        go (start + len) ((start, len) :: acc)
    in
    go 0 []
  end

let map ?(trace = Jfeed_trace.Trace.disabled) ~jobs ~f a =
  let n = Array.length a in
  (* The [pool] span lives in the calling domain's tracer; workers run
     with their own per-domain ambient tracers and never touch this
     one, so recording here is race-free. *)
  Jfeed_trace.Trace.span trace "pool" @@ fun () ->
  if Jfeed_trace.Trace.enabled trace then begin
    Jfeed_trace.Trace.add_attr trace "jobs" (string_of_int jobs);
    Jfeed_trace.Trace.add_attr trace "items" (string_of_int n)
  end;
  if jobs <= 1 || n <= 1 then Array.map f a
  else begin
    let workers = min jobs n in
    let cs = Array.of_list (chunks ~n ~jobs:workers) in
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < Array.length cs then begin
          let start, len = cs.(i) in
          for j = start to start + len - 1 do
            out.(j) <-
              Some
                (match f a.(j) with
                | v -> Ok v
                | exception e -> Error (e, Printexc.get_raw_backtrace ()))
          done;
          claim ()
        end
      in
      claim ()
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* Every slot was written by exactly one worker, and the joins order
       those writes before these reads. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      out
  end
