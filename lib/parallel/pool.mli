(** Domain-based worker pool for batch grading (OCaml 5 multicore).

    The pool maps a function over an array on [jobs] domains with
    {e chunked} work distribution — workers claim contiguous index
    ranges from a shared atomic cursor, so load balances even when item
    costs are wildly uneven (one pathological submission does not stall
    a whole static partition) — and a {e deterministic merge}: result
    [i] always lands in slot [i], so the output is byte-identical to the
    sequential run whatever the scheduling.

    The mapped function must not touch shared mutable state; everything
    in the grading pipeline satisfies this (per-submission budgets,
    domain-local regex memo in [Jfeed_exprmatch.Template], per-call
    embedding caches in [Jfeed_core.Grader]). *)

val chunks : n:int -> jobs:int -> (int * int) list
(** [chunks ~n ~jobs] — the (start, length) work units used to
    distribute [n] items over [jobs] workers: contiguous, disjoint,
    covering [0..n-1] in order, each about a quarter of an even
    per-worker share (so the atomic cursor can rebalance).  A pure
    function of [(n, jobs)]: the decomposition never depends on timing.
    Empty iff [n = 0]. *)

val map :
  ?trace:Jfeed_trace.Trace.t ->
  jobs:int ->
  f:('a -> 'b) ->
  'a array ->
  'b array
(** [map ~jobs ~f a] = [Array.map f a], computed on [min jobs (length a)]
    domains ([jobs <= 1] runs in the calling domain, no spawns).  Slots
    are filled by index, so the result — and any output derived from it
    — is identical at every [jobs] value.  If [f] raises, the first
    exception in {e index} order (not completion order) is re-raised
    after all workers have been joined.

    [?trace] (default disabled) records one [pool] span — with [jobs]
    and [items] attributes — in the {e calling} domain's tracer.  Worker
    domains keep their own ambient tracers
    ({!Jfeed_trace.Trace.with_current} inside [f]); the pool itself
    never writes to a worker's buffer, so the merge stays race-free and
    deterministic. *)
