(** jfeed — personalized feedback for introductory Java assignments.

    Subcommands:
    - [list]      — the twelve assignments and their knowledge-base sizes
    - [feedback]  — grade a submission file against an assignment
    - [graph]     — print the extended program dependence graph of a file
    - [generate]  — render synthetic submissions from an assignment space
    - [test]      — run an assignment's functional tests on a file
    - [repair]    — search the single-edit space for a minimal change
                    that makes the functional tests pass
    - [batch]     — grade a directory of submissions through the resilient
                    pipeline; JSON summary, never crashes on bad input
    - [serve]     — persistent grading daemon over newline-delimited JSON
                    with a content-addressed result cache
    - [assignments] — the bundle ids, one per line (scripting aid)
    - [analyze]   — run the static analysis passes over submission files
    - [lint-kb]   — statically validate the shipped pattern bundles
    - [version]   — tool version, KB revision digest and feature set *)

open Cmdliner
open Jfeed_kb
open Jfeed_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let bundle_conv =
  let parse id =
    match Bundles.find id with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown assignment %S; try: %s" id
               (String.concat ", "
                  (List.map
                     (fun (b : Bundles.t) -> b.grading.Grader.a_id)
                     Bundles.all))))
  in
  let print fmt (b : Bundles.t) =
    Format.pp_print_string fmt b.grading.Grader.a_id
  in
  Arg.conv (parse, print)

let assignment_pos =
  Arg.(
    required
    & pos 0 (some bundle_conv) None
    & info [] ~docv:"ASSIGNMENT" ~doc:"Assignment id (see $(b,jfeed list)).")

let file_pos n =
  Arg.(
    required
    & pos n (some file) None
    & info [] ~docv:"FILE" ~doc:"Java submission file.")

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-20s %10s %3s %3s  %s\n" "assignment" "S" "P" "C" "title";
    List.iter
      (fun (b : Bundles.t) ->
        Printf.printf "%-20s %10d %3d %3d  %s\n" b.grading.Grader.a_id
          (Jfeed_gen.Spec.size b.gen)
          (List.length (Bundles.patterns b))
          (List.length (Bundles.constraints b))
          b.grading.Grader.a_title)
      Bundles.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the twelve assignments")
    Term.(const run $ const ())

let feedback_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let normalize =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:"Apply else-polarity normalization first (§VII extension).")
  in
  let variants =
    Arg.(
      value & flag
      & info [ "with-variants" ]
          ~doc:"Consult the pattern hierarchy (§VII extension).")
  in
  let inline =
    Arg.(
      value & flag
      & info [ "inline-helpers" ]
          ~doc:"Inline student-invented helper methods (§VII extension).")
  in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"ID"
          ~doc:"Enforce an algorithmic strategy (see jfeed strategies).")
  in
  let run b json normalize variants inline strategy path =
    let grading =
      match strategy with
      | None -> b.Bundles.grading
      | Some id -> (
          match Strategies.find id with
          | Some s -> Strategies.apply s b.Bundles.grading
          | None ->
              Printf.eprintf "unknown strategy %S; see jfeed strategies\n" id;
              exit 1)
    in
    match
      Grader.grade_source ~normalize ~use_variants:variants
        ~inline_helpers:inline grading (read_file path)
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok result ->
        if json then print_endline (Feedback.to_json result.Grader.comments)
        else begin
          List.iter
            (fun c -> print_endline (Feedback.render c))
            result.Grader.comments;
          Printf.printf "\nscore Λ = %.1f / %d    method pairing: %s\n"
            result.Grader.score
            (List.length result.Grader.comments)
            (String.concat ", "
               (List.map
                  (fun (q, h) ->
                    Printf.sprintf "%s → %s" q
                      (Option.value ~default:"(none)" h))
                  result.Grader.pairing))
        end;
        0
  in
  Cmd.v
    (Cmd.info "feedback" ~doc:"Grade a submission and print the feedback")
    Term.(
      const run $ assignment_pos $ json $ normalize $ variants $ inline
      $ strategy $ file_pos 1)

let strategies_cmd =
  let run () =
    Printf.printf "%-36s %-20s %s\n" "strategy" "assignment" "title";
    List.iter
      (fun (s : Strategies.t) ->
        Printf.printf "%-36s %-20s %s\n" s.Strategies.s_id
          s.Strategies.applies_to s.Strategies.s_title)
      Strategies.all;
    0
  in
  Cmd.v
    (Cmd.info "strategies"
       ~doc:"List the predefined algorithmic strategies (§VI-C)")
    Term.(const run $ const ())

let graph_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object: assignment id plus every method's \
                nodes and edges.")
  in
  let run b dot json path =
    if dot && json then begin
      Printf.eprintf "jfeed graph: --dot and --json are exclusive\n";
      2
    end
    else
      match Jfeed_pdg.Epdg.of_source (read_file path) with
      | graphs ->
          if json then
            print_endline
              (Printf.sprintf {|{"assignment":"%s","methods":[%s]}|}
                 (Feedback.json_escape b.Bundles.grading.Grader.a_id)
                 (String.concat ","
                    (List.map
                       (fun (_, g) -> Jfeed_pdg.Epdg.to_json g)
                       graphs)))
          else
            List.iter
              (fun (_, g) ->
                print_string
                  (if dot then Jfeed_pdg.Epdg.to_dot g
                   else Jfeed_pdg.Epdg.to_string g))
              graphs;
          0
      | exception Jfeed_java.Parser.Parse_error (msg, line, col) ->
          Printf.eprintf "parse error at %d:%d: %s\n" line col msg;
          1
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Print the extended program dependence graph of a submission \
          (text, Graphviz via --dot, or JSON via --json)")
    Term.(const run $ assignment_pos $ dot $ json $ file_pos 1)

let generate_cmd =
  let index =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"N" ~doc:"Render submission number N.")
  in
  let sample =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N" ~doc:"Render N sampled submissions.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Sampling seed.")
  in
  let run b index sample seed =
    let spec = b.Bundles.gen in
    let total = Jfeed_gen.Spec.size spec in
    (match index with
    | Some i when i < 0 || i >= total ->
        Printf.eprintf "index %d out of range: %s has %d submissions (0-%d)\n"
          i spec.Jfeed_gen.Spec.id total (total - 1);
        exit 1
    | _ -> ());
    let indices =
      match index with
      | Some i -> [ i ]
      | None -> Jfeed_gen.Spec.sample_indices spec ~n:sample ~seed
    in
    List.iter
      (fun i ->
        Printf.printf "// %s submission %d of %d\n%s\n"
          spec.Jfeed_gen.Spec.id i
          (Jfeed_gen.Spec.size spec)
          (Jfeed_gen.Spec.source_of_index spec i))
      indices;
    0
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Render synthetic submissions from an assignment's search space")
    Term.(const run $ assignment_pos $ index $ sample $ seed)

(* --trace-dir: one Chrome trace_event file per submission, plus an
   aggregate summary.json.  File names derive from the submission file
   names ([Sys.readdir] basenames, so no separators to sanitize). *)
let write_trace_dir dir (summary : Jfeed_robust.Pipeline.summary) =
  let module Trace = Jfeed_trace.Trace in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write_file path contents =
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc
  in
  List.iteri
    (fun i (it : Jfeed_robust.Pipeline.item) ->
      if Trace.enabled it.trace then
        write_file
          (Filename.concat dir (it.file ^ ".trace.json"))
          (Trace.to_chrome_json ~pid:1 ~tid:(i + 1) it.trace))
    summary.items;
  (* Aggregate: nearest-rank p50/p95 of each stage's per-submission
     total, stages in first-seen order, then the top 5 patterns by
     total matcher fuel (the [match.fuel:<pattern>] counters). *)
  let stage_order = ref [] in
  let stage_ms : (string, float list) Hashtbl.t = Hashtbl.create 16 in
  let fuel_by_pattern : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (it : Jfeed_robust.Pipeline.item) ->
      List.iter
        (fun (stage, (_n, ns)) ->
          if not (Hashtbl.mem stage_ms stage) then
            stage_order := stage :: !stage_order;
          Hashtbl.replace stage_ms stage
            ((Int64.to_float ns /. 1e6)
            :: (try Hashtbl.find stage_ms stage with Not_found -> [])))
        (Trace.rollup it.trace);
      List.iter
        (fun (name, n) ->
          match String.index_opt name ':' with
          | Some i when String.sub name 0 i = "match.fuel" ->
              let p =
                String.sub name (i + 1) (String.length name - i - 1)
              in
              Hashtbl.replace fuel_by_pattern p
                (n
                + try Hashtbl.find fuel_by_pattern p with Not_found -> 0)
          | _ -> ())
        (Trace.counters it.trace))
    summary.items;
  let percentile p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.0
    else
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))
  in
  let stages =
    List.rev !stage_order
    |> List.map (fun stage ->
           let xs = Hashtbl.find stage_ms stage in
           Printf.sprintf {|"%s":{"p50_ms":%.4f,"p95_ms":%.4f}|}
             (Feedback.json_escape stage)
             (percentile 0.50 xs) (percentile 0.95 xs))
  in
  let top_patterns =
    Hashtbl.fold (fun p n acc -> (p, n) :: acc) fuel_by_pattern []
    |> List.sort (fun (p1, n1) (p2, n2) ->
           match compare n2 n1 with 0 -> compare p1 p2 | c -> c)
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun (p, n) ->
           Printf.sprintf {|{"pattern":"%s","fuel":%d}|}
             (Feedback.json_escape p) n)
  in
  let dedup =
    match summary.dedup with
    | Some d ->
        Printf.sprintf {|,"dedup":{"classes":%d,"replayed":%d}|}
          d.Jfeed_robust.Pipeline.classes d.Jfeed_robust.Pipeline.replayed
    | None -> ""
  in
  write_file
    (Filename.concat dir "summary.json")
    (Printf.sprintf
       {|{"submissions":%d,"stages":{%s},"top_patterns":[%s]%s}|}
       summary.total
       (String.concat "," stages)
       (String.concat "," top_patterns)
       dedup)

let batch_cmd =
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Per-submission fuel budget shared by the matcher, the \
             method-pairing search and the interpreter; exhaustion degrades \
             the grade instead of aborting it.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-submission CPU-time deadline.")
  in
  let no_tests =
    Arg.(
      value & flag
      & info [ "no-tests" ] ~doc:"Skip the functional-test stage.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Grade submissions on N parallel domains.  Output is \
             byte-identical to --jobs 1 (deterministic merge; the fuel \
             budget is per submission at any N).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Embed a per-stage trace summary (span counts, milliseconds, \
             matcher counters) in every submission's JSON line.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Write one Chrome trace_event JSON file per submission into \
             $(docv) (created if missing; loadable in about:tracing or \
             Perfetto), plus an aggregate summary.json with per-stage \
             p50/p95 and the patterns costing the most matcher fuel.")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Grade every submission independently instead of grading one \
             representative per α-equivalence class and replaying it for \
             the duplicates; also drops the summary's \"dedup\" field, \
             restoring the exact pre-dedup output bytes.")
  in
  let dir_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Directory of submission files.")
  in
  let run b fuel deadline no_tests jobs trace trace_dir no_dedup dir =
    if jobs < 1 then begin
      Printf.eprintf "jfeed batch: --jobs must be at least 1 (got %d)\n" jobs;
      2
    end
    else if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "jfeed batch: %S is not a directory\n" dir;
      2
    end
    else begin
      let sources =
        Sys.readdir dir |> Array.to_list |> List.sort compare
        |> List.filter_map (fun f ->
               let path = Filename.concat dir f in
               if Sys.is_directory path then None
               else
                 Some
                   ( f,
                     match read_file path with
                     | s -> Ok s
                     | exception Sys_error e -> Error e ))
      in
      let summary =
        Jfeed_robust.Pipeline.run_batch ?fuel ?deadline_s:deadline
          ~with_tests:(not no_tests) ~jobs
          ~traced:(trace || trace_dir <> None)
          ~dedup:(not no_dedup) b sources
      in
      (match trace_dir with
      | None -> ()
      | Some dir -> write_trace_dir dir summary);
      (* --trace-dir without --trace keeps stdout byte-identical to an
         untraced run; the traces live only in the directory. *)
      print_endline
        (Jfeed_robust.Pipeline.summary_to_json ~traces:trace summary);
      Jfeed_robust.Pipeline.exit_code summary
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Grade every submission in a directory through the resilient \
          pipeline (exit 0: all graded; 1: some degraded/rejected; 2: usage \
          error)")
    Term.(
      const run $ assignment_pos $ fuel $ deadline $ no_tests $ jobs
      $ trace $ trace_dir $ no_dedup $ dir_pos)

let assignments_cmd =
  let run () =
    List.iter
      (fun (b : Bundles.t) -> print_endline b.grading.Grader.a_id)
      Bundles.all;
    0
  in
  Cmd.v
    (Cmd.info "assignments"
       ~doc:
         "Print the assignment ids, one per line (the valid values of the \
          serve protocol's \"assignment\" field)")
    Term.(const run $ const ())

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of \
             stdin/stdout; connections are served concurrently and share \
             the cache.")
  in
  let cache_cap =
    Arg.(
      value
      & opt int Jfeed_service.Server.default_config.cache_cap
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:"Result-cache capacity in entries (LRU); 0 disables caching.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int Jfeed_service.Server.default_config.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Maximum grade requests held in memory at once; further lines \
             wait in the kernel pipe buffer.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Grade a batch of cache misses on N parallel domains.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Default per-request fuel budget; a request's \"fuel\" field \
             overrides it.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-request CPU-time deadline.")
  in
  let no_tests =
    Arg.(
      value & flag
      & info [ "no-tests" ]
          ~doc:"Skip the functional-test stage by default.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Make the result cache durable: append every fresh grade to a \
             checksummed log under $(docv) and replay it into a warm cache \
             on startup (crash-safe; a torn tail is truncated).")
  in
  let backlog =
    Arg.(
      value
      & opt int Jfeed_service.Server.default_config.backlog
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog for --socket mode.")
  in
  let shards =
    Arg.(
      value
      & opt int Jfeed_service.Server.default_config.shards
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Result-cache shard count.  Lookups are shard-count-invariant; \
             this only tunes lock granularity.")
  in
  let watermark =
    Arg.(
      value
      & opt (some int) None
      & info [ "watermark" ] ~docv:"N"
          ~doc:
            "Queue depth from which grade requests are admitted on the \
             degraded --shed-fuel budget instead of their own (socket \
             mode; requires --shed-fuel).")
  in
  let shed_fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-fuel" ] ~docv:"N"
          ~doc:
            "Fuel clamp for degraded admission past --watermark: admitted \
             requests keep the smaller of their own budget and $(docv).")
  in
  let event_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "event-log" ] ~docv:"DIR"
          ~doc:
            "Write one checksummed JSONL line per request lifecycle event \
             (admit, degrade, shed, cache hit/miss, grade, respond, \
             write-out) under $(docv); size-rotated, crash-replayable.  \
             Read it back with $(b,jfeed logs).")
  in
  let event_ring =
    Arg.(
      value
      & opt (some int) None
      & info [ "event-ring" ] ~docv:"N"
          ~doc:
            "Event-log in-memory ring capacity in lines (default 4096); \
             events past a full ring are counted as dropped, never block \
             grading.")
  in
  let event_rotate =
    Arg.(
      value
      & opt (some int) None
      & info [ "event-rotate" ] ~docv:"BYTES"
          ~doc:
            "Rotate events.jsonl to events.jsonl.1 past $(docv) bytes \
             (default 8 MiB); one rotated generation is kept.")
  in
  let trace_sample =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Tail-based sampling: retain the full span tree of every \
             $(docv)th graded cache miss, on top of the always-retained \
             slow, degraded and rejected requests.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Latency threshold above which a request's trace is retained \
             (defaults to --slo-ms when that is set).")
  in
  let slo_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-ms" ] ~docv:"MS"
          ~doc:
            "Grade-latency objective: answers within $(docv) ms count \
             good, slower ones (and sheds) bad; turns on SLO counters, \
             burn-rate gauges and the stats \"slo\" object.")
  in
  let slo_target =
    Arg.(
      value
      & opt float Jfeed_service.Server.default_config.slo_target
      & info [ "slo-target" ] ~docv:"FRACTION"
          ~doc:
            "Availability objective: the fraction of requests meant to \
             meet --slo-ms (default 0.999).  Burn rates divide by the \
             error budget 1 - $(docv).")
  in
  let run socket cache_cap queue_cap jobs fuel deadline no_tests cache_dir
      backlog shards watermark shed_fuel event_log event_ring event_rotate
      trace_sample slow_ms slo_ms slo_target =
    if jobs < 1 then begin
      Printf.eprintf "jfeed serve: --jobs must be at least 1 (got %d)\n" jobs;
      2
    end
    else if queue_cap < 1 then begin
      Printf.eprintf "jfeed serve: --queue-cap must be at least 1 (got %d)\n"
        queue_cap;
      2
    end
    else if shards < 1 then begin
      Printf.eprintf "jfeed serve: --shards must be at least 1 (got %d)\n"
        shards;
      2
    end
    else if backlog < 1 then begin
      Printf.eprintf "jfeed serve: --backlog must be at least 1 (got %d)\n"
        backlog;
      2
    end
    else if (match trace_sample with Some n -> n < 1 | None -> false)
    then begin
      Printf.eprintf
        "jfeed serve: --trace-sample must be at least 1 (got %d)\n"
        (Option.get trace_sample);
      2
    end
    else if not (slo_target > 0.0 && slo_target < 1.0) then begin
      Printf.eprintf
        "jfeed serve: --slo-target must be strictly between 0 and 1 (got \
         %g)\n"
        slo_target;
      2
    end
    else begin
      let config =
        {
          Jfeed_service.Server.cache_cap;
          queue_cap;
          jobs;
          fuel;
          deadline_s = deadline;
          with_tests = not no_tests;
          shards;
          cache_dir;
          backlog;
          watermark;
          shed_fuel;
          event_log;
          event_ring;
          event_rotate;
          trace_sample;
          slow_ms;
          slo_ms;
          slo_target;
        }
      in
      match
        (* [Failure] here is the durable store refusing to double-open a
           locked cache directory — a usage error, not a crash. *)
        try
          Ok
            (match socket with
            | None -> Jfeed_service.Server.serve_stdio config
            | Some path -> Jfeed_service.Server.serve_socket config path)
        with Failure msg -> Error msg
      with
      | Ok () -> 0
      | Error msg ->
          Printf.eprintf "jfeed serve: %s\n" msg;
          1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent grading daemon: newline-delimited JSON \
          requests (grade/stats/shutdown) on stdin or a Unix socket \
          (concurrent connections, admission control, optional durable \
          cache), one response line per request, α-renaming-aware result \
          cache")
    Term.(
      const run $ socket $ cache_cap $ queue_cap $ jobs $ fuel $ deadline
      $ no_tests $ cache_dir $ backlog $ shards $ watermark $ shed_fuel
      $ event_log $ event_ring $ event_rotate $ trace_sample $ slow_ms
      $ slo_ms $ slo_target)

let client_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"The daemon's Unix-domain socket.")
  in
  (* A protocol-agnostic pump so shell scripts (and the cram suite) can
     drive a socket daemon without netcat: stdin bytes go to the
     socket, socket bytes come back on stdout, stdin EOF half-closes
     the connection (the daemon answers everything sent, then closes),
     socket EOF ends the pump.  Both directions are multiplexed, so a
     large request set can't deadlock against a large response set. *)
  let run path =
    let module Sysx = Jfeed_service.Sysx in
    (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception _ -> ());
    try
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let buf = Bytes.create 65536 in
      let pending = ref Bytes.empty in
      let off = ref 0 in
      let unsent () = Bytes.length !pending - !off in
      let stdin_open = ref true in
      let sock_open = ref true in
      while !sock_open do
        let rds =
          (if !stdin_open && unsent () = 0 then [ Unix.stdin ] else [])
          @ [ sock ]
        in
        let wrs = if unsent () > 0 then [ sock ] else [] in
        let r, w, _ = Sysx.select rds wrs [] (-1.0) in
        if List.mem Unix.stdin r then begin
          match Sysx.read Unix.stdin buf 0 (Bytes.length buf) with
          | `Read 0 ->
              stdin_open := false;
              if unsent () = 0 then Unix.shutdown sock Unix.SHUTDOWN_SEND
          | `Read n ->
              pending := Bytes.sub buf 0 n;
              off := 0
          | `Again -> ()
        end;
        if List.mem sock w && unsent () > 0 then begin
          match Sysx.write sock !pending !off (unsent ()) with
          | `Wrote n ->
              off := !off + n;
              if unsent () = 0 then begin
                pending := Bytes.empty;
                off := 0;
                if not !stdin_open then
                  Unix.shutdown sock Unix.SHUTDOWN_SEND
              end
          | `Again -> ()
        end;
        if List.mem sock r then begin
          match Sysx.read sock buf 0 (Bytes.length buf) with
          | `Read 0 -> sock_open := false
          | `Read n ->
              print_string (Bytes.sub_string buf 0 n);
              flush stdout
          | `Again -> ()
        end
      done;
      (try Unix.close sock with _ -> ());
      0
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "jfeed client: %s: %s\n" path (Unix.error_message e);
      1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Pump stdin to a serve daemon's Unix socket and its responses \
          back to stdout (stdin EOF half-closes; exits when the daemon \
          has answered everything)")
    Term.(const run $ socket)

let logs_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "event-log" ] ~docv:"DIR"
          ~doc:"The daemon's --event-log directory.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:
            "After replaying, keep polling the log and print events as the \
             daemon writes them (like tail -f; rotation is followed).")
  in
  let rid =
    Arg.(
      value
      & opt (some string) None
      & info [ "rid" ] ~docv:"ID"
          ~doc:
            "Print only the named request's lifecycle — every event line \
             whose \"rid\" equals $(docv).")
  in
  let run dir follow rid =
    let module Events = Jfeed_trace.Events in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      nn = 0 || go 0
    in
    let wanted line =
      match rid with
      | None -> true
      | Some r ->
          contains line
            (Printf.sprintf {|"rid":"%s"|}
               (Jfeed_trace.Trace.json_escape r))
    in
    let show line = if wanted line then print_endline line in
    (* Replay tolerates a live writer and a torn tail alike: only
       checksummed, newline-terminated lines print; the first invalid
       one ends the pass. *)
    ignore (Events.replay_dir dir ~f:show);
    flush stdout;
    if not follow then 0
    else begin
      let count_current () =
        let n = ref 0 in
        ignore
          (Events.replay_file (Events.current_path dir) ~f:(fun _ -> incr n));
        !n
      in
      let seen = ref (count_current ()) in
      while true do
        Unix.sleepf 0.2;
        let n = count_current () in
        (* Fewer valid lines than last poll means the file rotated
           underneath us; the new generation starts from scratch. *)
        if n < !seen then seen := 0;
        if n > !seen then begin
          let i = ref 0 in
          ignore
            (Events.replay_file (Events.current_path dir) ~f:(fun line ->
                 if !i >= !seen then show line;
                 incr i));
          flush stdout;
          seen := n
        end
      done;
      0
    end
  in
  Cmd.v
    (Cmd.info "logs"
       ~doc:
         "Replay a serve daemon's lifecycle event log (valid prefix only; \
          torn tails are skipped), optionally filtered to one request id \
          and optionally following the live file")
    Term.(const run $ dir $ follow $ rid)

let top_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"The daemon's Unix-domain socket.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period (default 2).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render one frame and exit, without clearing the screen — \
             scriptable.")
  in
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N" ~doc:"Stop after N frames.")
  in
  let run path interval once frames =
    let module Proto = Jfeed_service.Proto in
    try
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      (* One persistent connection; each frame asks for stats + slowlog
         and reads exactly two lines back (the protocol answers in
         request order). *)
      let query () =
        output_string oc "{\"op\":\"stats\"}\n{\"op\":\"slowlog\"}\n";
        flush oc;
        let s = input_line ic in
        let sl = input_line ic in
        (Proto.parse_json s, Proto.parse_json sl)
      in
      let jget j p =
        List.fold_left
          (fun acc k -> Option.bind acc (Proto.member k))
          (Some j) p
      in
      let num j p = match jget j p with Some (Proto.Num f) -> f | _ -> 0.0 in
      let str j p = match jget j p with Some (Proto.Str s) -> s | _ -> "-" in
      let frames_wanted = if once then Some 1 else frames in
      let prev_requests = ref 0.0 in
      let frame = ref 0 in
      let continue = ref true in
      let rc = ref 0 in
      while !continue do
        (match query () with
        | Ok stats, Ok slow ->
            incr frame;
            if not once then print_string "\027[2J\027[H";
            let requests = num stats [ "requests" ] in
            let rps =
              if !frame = 1 then 0.0
              else (requests -. !prev_requests) /. interval
            in
            prev_requests := requests;
            let hits = num stats [ "cache"; "hits" ] in
            let misses = num stats [ "cache"; "misses" ] in
            let hit_rate =
              if hits +. misses > 0.0 then
                100.0 *. hits /. (hits +. misses)
              else 0.0
            in
            Printf.printf "jfeed top — %s — frame %d\n" path !frame;
            Printf.printf
              "requests  total %.0f  (%.1f rps)   grades %.0f   errors %.0f\n"
              requests rps
              (num stats [ "grades" ])
              (num stats [ "errors" ]);
            Printf.printf
              "cache     hits %.0f  misses %.0f  hit-rate %.1f%%  size \
               %.0f/%.0f\n"
              hits misses hit_rate
              (num stats [ "cache"; "size" ])
              (num stats [ "cache"; "cap" ]);
            Printf.printf
              "queue     depth %.0f  max %.0f  cap %.0f   conns %.0f\n"
              (num stats [ "queue"; "depth" ])
              (num stats [ "queue"; "max" ])
              (num stats [ "queue"; "cap" ])
              (num stats [ "conns" ]);
            Printf.printf
              "outcomes  graded %.0f  degraded %.0f  rejected %.0f\n"
              (num stats [ "outcomes"; "graded" ])
              (num stats [ "outcomes"; "degraded" ])
              (num stats [ "outcomes"; "rejected" ]);
            Printf.printf "admission shed %.0f  degraded %.0f\n"
              (num stats [ "admission"; "shed" ])
              (num stats [ "admission"; "degraded" ]);
            Printf.printf "latency   p50 %.3g ms  p95 %.3g ms\n"
              (num stats [ "latency_ms"; "p50" ])
              (num stats [ "latency_ms"; "p95" ]);
            (match jget stats [ "slo" ] with
            | Some _ ->
                Printf.printf
                  "slo       good %.0f  bad %.0f  burn 1m %.3g  5m %.3g  \
                   1h %.3g\n"
                  (num stats [ "slo"; "good" ])
                  (num stats [ "slo"; "bad" ])
                  (num stats [ "slo"; "burn"; "1m" ])
                  (num stats [ "slo"; "burn"; "5m" ])
                  (num stats [ "slo"; "burn"; "1h" ])
            | None -> ());
            (match jget slow [ "slowest" ] with
            | Some (Proto.Arr (first :: _)) ->
                Printf.printf "slowest   %.3g ms  %s  %s\n"
                  (num first [ "ms" ])
                  (str first [ "assignment" ])
                  (str first [ "outcome" ])
            | _ -> ());
            flush stdout
        | _ ->
            prerr_endline "jfeed top: malformed response";
            rc := 1;
            continue := false);
        (match frames_wanted with
        | Some n when !frame >= n -> continue := false
        | _ -> ());
        if !continue then Unix.sleepf interval
      done;
      (try Unix.close sock with _ -> ());
      !rc
    with
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "jfeed top: %s: %s\n" path (Unix.error_message e);
        1
    | End_of_file ->
        Printf.eprintf "jfeed top: daemon closed the connection\n";
        1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live operator console for a serve daemon: rps, queue depth, \
          shed/degraded rates, cache hit rate, latency percentiles, SLO \
          burn — one plain-text frame per refresh")
    Term.(const run $ socket $ interval $ once $ frames)

let analyze_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"One JSON object per file: {\"file\":…,\"diagnostics\":[…]}.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Analyze files on N parallel domains.  Output is byte-identical \
             to --jobs 1 (deterministic merge).")
  in
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"PASS[,PASS…]"
          ~doc:
            "Report only these passes' diagnostics (parse/read errors are \
             always reported).  Mutually exclusive with --except.")
  in
  let except =
    Arg.(
      value & opt (some string) None
      & info [ "except" ] ~docv:"PASS[,PASS…]"
          ~doc:"Suppress these passes' diagnostics.")
  in
  let oracle =
    Arg.(
      value & opt (some string) None
      & info [ "oracle" ] ~docv:"FILE"
          ~doc:
            "Reference solution; arms the efficiency pass, which flags \
             methods whose inferred loop-nest degree exceeds the \
             same-named oracle method's.")
  in
  let files_pos =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Java submission files.")
  in
  let run json jobs only except oracle files =
    let module D = Jfeed_analysis.Diagnostic in
    let module P = Jfeed_absint.Passes in
    let usage fmt = Printf.ksprintf (fun m ->
        Printf.eprintf "jfeed analyze: %s\n" m; Error 2) fmt
    in
    (* Pass-filter satellite: validated against the ten known ids; the
       [parse]/[read] pseudo-passes are never filtered out. *)
    let parse_passes s =
      let ids = List.filter (fun p -> p <> "") (String.split_on_char ',' s) in
      match List.find_opt (fun p -> not (List.mem p P.all_pass_ids)) ids with
      | Some bad ->
          usage "unknown pass '%s' (known: %s)" bad
            (String.concat ", " P.all_pass_ids)
      | None -> Ok ids
    in
    let filter =
      if jobs < 1 then usage "--jobs must be at least 1 (got %d)" jobs
      else
        match (only, except) with
        | Some _, Some _ -> usage "--only and --except are mutually exclusive"
        | Some s, None ->
            Result.map
              (fun ids (d : D.t) ->
                List.mem d.pass ids || not (List.mem d.pass P.all_pass_ids))
              (parse_passes s)
        | None, Some s ->
            Result.map
              (fun ids (d : D.t) -> not (List.mem d.pass ids))
              (parse_passes s)
        | None, None -> Ok (fun _ -> true)
    in
    let oracle_degrees =
      match oracle with
      | None -> Ok None
      | Some path -> (
          match read_file path with
          | exception Sys_error e -> usage "--oracle: %s" e
          | src -> (
              match Jfeed_java.Parser.parse_program src with
              | prog -> Ok (Some (P.method_degrees prog))
              | exception _ -> usage "--oracle: %s does not parse" path))
    in
    match (filter, oracle_degrees) with
    | Error c, _ | _, Error c -> c
    | Ok keep, Ok oracle_degrees ->
        let analyze_file path =
          match read_file path with
          | exception Sys_error e ->
              [ D.make ~pass:"read" ~severity:D.Error e ]
          | src -> P.analyze_source ?oracle_degrees src
        in
        let render path diags =
          if json then
            Printf.sprintf {|{"file":"%s","diagnostics":[%s]}|}
              (Feedback.json_escape path)
              (String.concat "," (List.map D.to_json diags))
          else
            String.concat ""
              (List.map
                 (fun d -> Printf.sprintf "%s:%s\n" path (D.render d))
                 diags)
        in
        let results =
          Jfeed_parallel.Pool.map ~jobs
            ~f:(fun path ->
              let diags = List.filter keep (analyze_file path) in
              (render path diags, diags <> []))
            (Array.of_list files)
        in
        Array.iter
          (fun (text, _) ->
            if json then print_endline text else print_string text)
          results;
        if Array.exists snd results then 1 else 0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static analysis passes (use-before-init, dead-store, \
          unreachable, missing-return, suspicious-loop, div-by-zero, \
          array-out-of-bounds, constant-condition, unused-range, \
          efficiency) over submission files (exit 0: clean; 1: \
          diagnostics; 2: usage error)")
    Term.(const run $ json $ jobs $ only $ except $ oracle $ files_pos)

let lint_kb_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One JSON object per assignment: \
             {\"assignment\":…,\"diagnostics\":[…]}.")
  in
  let fixture =
    Arg.(
      value & flag
      & info [ "fixture-broken" ]
          ~doc:
            "Lint the deliberately broken built-in fixture instead of the \
             shipped bundles (must exit 1 — used by the test suite).")
  in
  let assignments_pos =
    Arg.(
      value & pos_all bundle_conv []
      & info [] ~docv:"ASSIGNMENT"
        ~doc:"Assignments to lint (default: all twelve).")
  in
  let run json fixture assignments =
    let module D = Jfeed_analysis.Diagnostic in
    let specs =
      if fixture then [ Jfeed_analysis.Kb_lint.broken_fixture ]
      else
        (match assignments with [] -> Bundles.all | bs -> bs)
        |> List.map (fun (b : Bundles.t) -> b.grading)
    in
    let dirty = ref false in
    List.iter
      (fun (spec : Grader.spec) ->
        let diags = Jfeed_analysis.Kb_lint.lint_spec spec in
        if diags <> [] then dirty := true;
        if json then
          Printf.printf {|{"assignment":"%s","diagnostics":[%s]}|}
            (Feedback.json_escape spec.a_id)
            (String.concat "," (List.map D.to_json diags))
        else if diags = [] then Printf.printf "%s: ok\n" spec.a_id
        else
          List.iter
            (fun d -> Printf.printf "%s:%s\n" spec.a_id (D.render d))
            diags;
        if json then print_newline ())
      specs;
    if !dirty then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint-kb"
       ~doc:
         "Statically validate pattern bundles: dangling references, unknown \
          pattern ids, unbound feedback placeholders, unsatisfiable \
          patterns, duplicates (exit 0: clean; 1: problems found)")
    Term.(const run $ json $ fixture $ assignments_pos)

let test_cmd =
  let run b path =
    let suite = b.Bundles.suite in
    let reference =
      Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
    in
    let expected = Jfeed_ftest.Runner.expected_outputs suite reference in
    match Jfeed_java.Parser.parse_program (read_file path) with
    | exception Jfeed_java.Parser.Parse_error (msg, line, col) ->
        Printf.eprintf "parse error at %d:%d: %s\n" line col msg;
        1
    | prog -> (
        match Jfeed_ftest.Runner.run suite ~expected prog with
        | Jfeed_ftest.Runner.Pass ->
            print_endline "all functional tests passed";
            0
        | Jfeed_ftest.Runner.Fail { case; reason } ->
            Printf.printf "FAILED on %s: %s\n" case reason;
            1)
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Run the assignment's functional tests on a file")
    Term.(const run $ assignment_pos $ file_pos 1)

let repair_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the grading outcome JSON with the repair hint spliced \
             in as its \"repair\" field.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Screen candidate edits on N parallel domains.  Output is \
             byte-identical to --jobs 1 (candidates are charged against \
             the budget in priority order whatever the evaluation \
             order).")
  in
  let fuel =
    Arg.(
      value
      & opt int Jfeed_repair.Repair.default_fuel
      & info [ "fuel" ] ~docv:"UNITS"
          ~doc:"Total repair budget (interpreter steps across all \
                candidate screenings).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"CPU-time bound on the search, checked between screening \
                batches.")
  in
  let run b json jobs fuel deadline path =
    if jobs < 1 then begin
      Printf.eprintf "jfeed repair: --jobs must be at least 1 (got %d)\n" jobs;
      2
    end
    else
      match read_file path with
      | exception Sys_error e ->
          Printf.eprintf "jfeed repair: %s\n" e;
          1
      | src ->
          let outcome =
            Jfeed_repair.Repair.search ~fuel ?deadline_s:deadline ~jobs b src
          in
          if json then begin
            let item =
              Jfeed_robust.Pipeline.grade_submission ~name:path b src
            in
            print_endline
              (Jfeed_robust.Outcome.to_json ~file:path
                 ~repair:(Jfeed_repair.Repair.to_json outcome)
                 item.Jfeed_robust.Pipeline.outcome)
          end
          else print_endline (Jfeed_repair.Repair.render outcome);
          (match outcome.Jfeed_repair.Repair.status with
          | Jfeed_repair.Repair.Already_passing -> 0
          | _ -> 1)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Search the single-edit space for a minimal change that makes \
          the assignment's functional tests pass (exit 0: already \
          passing; 1: a fix was needed — found or not; 2: usage error)")
    Term.(
      const run $ assignment_pos $ json $ jobs $ fuel $ deadline $ file_pos 1)

let tool_version = Jfeed_service.Build.version

let version_cmd =
  (* The build's identity on one JSON line: tool version, the digest of
     the compiled-in knowledge base (Bundles.revision — two builds with
     the same digest grade identically), and the compiled-in feature
     set, fixed order. *)
  let features =
    [
      "normalize"; "variants"; "inline-helpers"; "strategies"; "analysis";
      "absint"; "parallel"; "serve-cache"; "trace"; "repair"; "events"; "slo";
    ]
  in
  let run () =
    Printf.printf {|{"version":"%s","kb_revision":"%s","features":[%s]}|}
      (Feedback.json_escape tool_version)
      (Feedback.json_escape (Bundles.revision ()))
      (String.concat ","
         (List.map (fun f -> {|"|} ^ Feedback.json_escape f ^ {|"|}) features));
    print_newline ();
    0
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print tool version, knowledge-base revision digest and enabled \
          features as one JSON line")
    Term.(const run $ const ())

let () =
  let doc = "PDG-pattern personalized feedback for intro Java assignments" in
  let info = Cmd.info "jfeed" ~version:tool_version ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; feedback_cmd; graph_cmd; generate_cmd; test_cmd;
            repair_cmd; batch_cmd; strategies_cmd; serve_cmd; client_cmd;
            logs_cmd; top_cmd; assignments_cmd; analyze_cmd; lint_kb_cmd;
            version_cmd;
          ]))
