(** Quickstart: the paper's running example end to end.

    1. Build the extended program dependence graph of the Fig. 2a
       submission (the paper's Fig. 3) and print it.
    2. Grade all three Fig. 2 submissions against the Assignment 1
       knowledge base and show the personalized feedback.

    Run with: [dune exec examples/quickstart.exe] *)

open Jfeed_core
open Jfeed_kb

let fig2a =
  {|
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let fig2b =
  {|
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + "\n");
  System.out.print(e + "\n");
}
|}

let fig2c =
  {|
void assignment1(int[] a) {
  int x = 0, y = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      x *= a[i];
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      y += a[i];
  System.out.print(x + "\n");
  System.out.print(y + "\n");
}
|}

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let grade_and_print name src =
  banner (Printf.sprintf "Feedback for %s" name)
  ;
  match Grader.grade_source Bundles.assignment1.Bundles.grading src with
  | Error msg -> Printf.printf "parse error: %s\n" msg
  | Ok result ->
      List.iter
        (fun c -> print_endline (Feedback.render c))
        result.Grader.comments;
      Printf.printf "score Λ = %.1f / %d\n" result.Grader.score
        (List.length result.Grader.comments)

let () =
  banner "Extended program dependence graph of Fig. 2a (the paper's Fig. 3)";
  List.iter
    (fun (_, g) -> print_string (Jfeed_pdg.Epdg.to_string g))
    (Jfeed_pdg.Epdg.of_source fig2a);
  print_newline ();
  print_string "Graphviz version:\n";
  List.iter
    (fun (_, g) -> print_string (Jfeed_pdg.Epdg.to_dot g))
    (Jfeed_pdg.Epdg.of_source fig2a);
  grade_and_print "Fig. 2a (incorrect: wrong even init, <=, parity, prints)"
    fig2a;
  grade_and_print "Fig. 2b (correct)" fig2b;
  grade_and_print "Fig. 2c (incorrect: swapped accumulations)" fig2c
