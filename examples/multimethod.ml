(** Algorithm 2 in action: multiple expected methods, renamed helpers and
    student-invented helpers (the §VII inlining extension).

    Run with: [dune exec examples/multimethod.exe] *)

open Jfeed_core
open Jfeed_kb

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let show (r : Grader.result) =
  Printf.printf "pairing: %s\nscore:   Λ = %.1f / %d\n"
    (String.concat ", "
       (List.map
          (fun (q, h) ->
            Printf.sprintf "%s → %s" q (Option.value ~default:"(none)" h))
          r.Grader.pairing))
    r.Grader.score
    (List.length r.Grader.comments);
  List.iter
    (fun c ->
      if c.Feedback.verdict <> Feedback.Correct then
        print_endline (Feedback.render c))
    r.Grader.comments

let b = Option.get (Bundles.find "esc-LAB-3-P1-V1")

(* The assignment expects two methods: the driver lab3p1 and a factorial
   helper.  This student renamed the helper and swapped the method
   order — the combination search pairs them by the feedback score Λ,
   not by name. *)
let renamed =
  {|
void lab3p1(int k) {
    int n = 0;
    while (myFactorial(n + 1) <= k) {
        n++;
    }
    System.out.println(n);
}

int myFactorial(int x) {
    int f = 1;
    for (int i = 1; i <= x; i++) {
        f *= i;
    }
    return f;
}
|}

(* This student additionally extracted the loop body of the helper into a
   third method of her own — unknown to the instructor.  The published
   system sees three methods where two are expected; with helper inlining
   the extra method is folded back. *)
let extracted =
  {|
int step(int acc, int i) { return acc * i; }

int factorial(int x) {
    int f = 1;
    for (int i = 1; i <= x; i++) {
        f = step(f, i);
    }
    return f;
}

void lab3p1(int k) {
    int n = 0;
    while (factorial(n + 1) <= k) {
        n++;
    }
    System.out.println(n);
}
|}

let () =
  banner "Renamed helper, reordered methods";
  print_endline renamed;
  (match Grader.grade_source b.Bundles.grading renamed with
  | Ok r -> show r
  | Error e -> print_endline e);
  banner "Student-extracted helper — published system (three methods)";
  print_endline extracted;
  (match Grader.grade_source b.Bundles.grading extracted with
  | Ok r -> show r
  | Error e -> print_endline e);
  banner "Same submission with helper inlining (§VII extension)";
  match Grader.grade_source ~inline_helpers:true b.Bundles.grading extracted with
  | Ok r -> show r
  | Error e -> print_endline e
