(** The paper's Fig. 7: a submission to rit-all-g-medals that is
    *functionally correct* — it prints the right gold-medal count — while
    being *semantically incorrect*: it reads record fields at duplicated
    cursor positions, which happens to advance the file cursor
    consistently.  Functional testing accepts it; the pattern-based
    feedback pinpoints the misread fields.

    Run with: [dune exec examples/olympics.exe] *)

open Jfeed_core
open Jfeed_kb

let () =
  let b = Option.get (Bundles.find "rit-all-g-medals") in
  (* Build a Fig. 7-style submission from the assignment's own error
     space: the last name is read under the *same* position condition as
     the first name (i %% 5 == 1), so that single condition advances the
     file cursor twice.  Token consumption still happens in record order,
     so every value lands in the right variable and the gold-medal counts
     come out right — functionally correct, semantically wrong. *)
  let spec = b.Bundles.gen in
  let digits =
    Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0
  in
  (* choice "ln-residue", option "1" (duplicated with fn's position). *)
  Array.iteri
    (fun i c ->
      if c.Jfeed_gen.Spec.tag = "ln-residue" then digits.(i) <- 2)
    spec.Jfeed_gen.Spec.choices;
  let fig7 = spec.Jfeed_gen.Spec.render digits in
  Printf.printf "Fig. 7-style submission:\n%s\n" fig7;
  let reference =
    Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
  in
  let expected = Jfeed_ftest.Runner.expected_outputs b.Bundles.suite reference in
  let prog = Jfeed_java.Parser.parse_program fig7 in
  (match Jfeed_ftest.Runner.run b.Bundles.suite ~expected prog with
  | Jfeed_ftest.Runner.Pass ->
      print_endline
        "functional testing: PASS — every gold-medal count is correct!"
  | Jfeed_ftest.Runner.Fail { case; reason } ->
      Printf.printf "functional testing: FAIL on %s (%s)\n" case reason);
  print_endline "";
  print_endline "pattern-based feedback:";
  let result = Grader.grade b.Bundles.grading prog in
  List.iter
    (fun c ->
      if c.Feedback.verdict <> Feedback.Correct then
        print_endline (Feedback.render c))
    result.Grader.comments;
  Printf.printf
    "\nscore Λ = %.1f / %d — the duplicated cursor positions are detected \
     even though the output is right\n\
     (the paper found 1,872 such functionally-correct-but-semantically-wrong \
     submissions in this assignment).\n"
    result.Grader.score
    (List.length result.Grader.comments)
