(** The paper's Fig. 8 and §VI-C: why reference-solution techniques need
    one reference per variation while the pattern approach does not.

    A CLARA-style baseline compares whole variable traces against a
    reference solution; the functionally equivalent one-loop submission
    interleaves the same values differently, so it matches no cluster.
    The pattern knowledge base grades both top marks.

    Run with: [dune exec examples/clara_gap.exe] *)

open Jfeed_baselines
open Jfeed_kb
open Jfeed_core

let reference_two_loops =
  {|
void assignment1(int[] a) {
    int o = 0;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        i++;
    }
    i = 0;
    int e = 1;
    while (i < a.length) {
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
|}

let submission_one_loop =
  {|
void assignment1(int[] a) {
    int o = 0, e = 1;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
|}

let () =
  let parse = Jfeed_java.Parser.parse_program in
  let args =
    [ Jfeed_interp.Value.Varr
        [| Jfeed_interp.Value.Vint 3; Vint 4; Vint 5; Vint 6 |] ]
  in
  Printf.printf "Fig. 8a (reference, two loops):\n%s\n" reference_two_loops;
  Printf.printf "Fig. 8b (correct submission, one loop):\n%s\n"
    submission_one_loop;
  (* Both print the same output. *)
  let run src =
    (Jfeed_interp.Interp.run_source src ~entry:"assignment1" ~args)
      .Jfeed_interp.Interp.stdout
  in
  Printf.printf "outputs: reference %S, submission %S — identical: %b\n\n"
    (run reference_two_loops)
    (run submission_one_loop)
    (run reference_two_loops = run submission_one_loop);
  (* CLARA-like whole-trace comparison. *)
  let tr src = fst (Clara_like.trace_of (parse src) ~entry:"assignment1" ~args) in
  let t_ref = tr reference_two_loops and t_sub = tr submission_one_loop in
  Printf.printf "CLARA-like: traces equivalent?      %b  (needs one reference \
                 per variation)\n"
    (Clara_like.equivalent t_ref t_sub);
  (match Clara_like.match_against ~reference:t_ref t_sub with
  | Clara_like.Match -> print_endline "CLARA-like verdict: match"
  | Clara_like.Repairs n ->
      Printf.printf
        "CLARA-like verdict: %d spurious 'repairs' on a correct submission\n" n
  | Clara_like.No_match ->
      print_endline "CLARA-like verdict: no reference matches");
  (* Pattern-based grading. *)
  let result =
    Grader.grade Bundles.assignment1.Bundles.grading (parse submission_one_loop)
  in
  Printf.printf
    "\npattern-based: score Λ = %.1f / %d — the one-loop form is graded \
     perfectly\n(order-independent patterns; no reference enumeration).\n"
    result.Grader.score
    (List.length result.Grader.comments);
  (* And the reference's own two-loop shape also grades perfectly: *)
  let r2 =
    Grader.grade Bundles.assignment1.Bundles.grading (parse reference_two_loops)
  in
  Printf.printf
    "pattern-based on the two-loop form: Λ = %.1f / %d — same knowledge \
     base covers both.\n"
    r2.Grader.score
    (List.length r2.Grader.comments)
