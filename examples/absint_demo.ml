(** Abstract interpretation demo: interval inference, the dataflow
    diagnostics it powers, and the static efficiency grade.

    1. Run the interval engine over a small method and print the
       inferred range of every variable at each loop head.
    2. Show the four interval-backed diagnostic passes firing on a
       seeded buggy submission.
    3. Infer loop bounds for an O(n^2) submission and an O(n) reference
       of the same task and show the [efficiency] diagnostic.

    Run with: [dune exec examples/absint_demo.exe] *)

open Jfeed_java
module Interval = Jfeed_absint.Interval
module P = Jfeed_absint.Passes
module AI = P.AI
module E = AI.E

let heading t =
  Printf.printf "\n=== %s ===\n" t

(* ------------------------------------------------------------------ *)

let ranges_src =
  {|
int sumTo(int n) {
  int sum = 0;
  int i = 0;
  while (i < n) {
    sum = sum + i;
    i = i + 1;
  }
  return sum;
}
|}

let show_ranges () =
  heading "loop-head intervals";
  print_string ranges_src;
  let prog = Parser.parse_program ranges_src in
  List.iter
    (fun (m : Ast.meth) ->
      let r = AI.analyze_meth m in
      Printf.printf "method %s: %d abstract steps, %d widenings\n" m.m_name
        r.AI.steps r.AI.widenings;
      Hashtbl.iter
        (fun s env ->
          match (s : Ast.stmt) with
          | Swhile (c, _) ->
              Printf.printf "  at 'while (%s)':\n" (Pretty.expr c);
              List.iter
                (fun x ->
                  Printf.printf "    %-4s in %s\n" x
                    (Interval.to_string (E.var env x)))
                [ "i"; "sum"; "n" ]
          | _ -> ())
        r.AI.head)
    prog.Ast.methods

(* ------------------------------------------------------------------ *)

let buggy_src =
  {|
int stats(int n) {
  int[] b = new int[3];
  int zero = 0;
  int total = b[3];
  int bad = total / zero;
  if (zero == 0 && n > 5) {
    bad = bad + 1;
  }
  int k = 3;
  while (k > 0) {
    total = total + bad;
  }
  return total;
}
|}

let show_diags () =
  heading "interval-backed diagnostics";
  print_string buggy_src;
  List.iter
    (fun d -> print_endline (P.Diagnostic.render d))
    (P.analyze_source buggy_src)

(* ------------------------------------------------------------------ *)

let quadratic_src =
  {|
int sumAll(int[] a) {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    for (int j = 0; j <= i; j++) {
      if (j == i) total = total + a[j];
    }
  }
  return total;
}
|}

let linear_src =
  {|
int sumAll(int[] a) {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    total = total + a[i];
  }
  return total;
}
|}

let show_efficiency () =
  heading "static efficiency grading";
  let cost src =
    let prog = Parser.parse_program src in
    List.iter
      (fun (m : Ast.meth) ->
        match P.method_cost m with
        | P.Known d, _ ->
            Printf.printf "  %s: inferred cost %s\n" m.m_name (P.degree_str d)
        | P.Unknown_cost, _ -> Printf.printf "  %s: cost unknown\n" m.m_name)
      prog.Ast.methods
  in
  print_string "reference solution:";
  print_string linear_src;
  cost linear_src;
  print_string "\nsubmission:";
  print_string quadratic_src;
  cost quadratic_src;
  print_newline ();
  let oracle = Parser.parse_program linear_src in
  List.iter
    (fun d -> print_endline (P.Diagnostic.render d))
    (P.analyze_source ~oracle quadratic_src)

let () =
  show_ranges ();
  show_diags ();
  show_efficiency ()
