(** A guided tour of the matching machinery on Assignment 1 (paper §III–V):
    the patterns p_o, p_a and p_p, their embeddings with variable
    mappings γ, correctness marks, and the three constraint types.

    Run with: [dune exec examples/assignment1.exe] *)

open Jfeed_core
open Jfeed_kb

let submission =
  {|
void assignment1(int[] a) {
  int odd = 1;
  int even = 1;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 0)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let mark = function Matcher.Exact -> "correct" | Matcher.Approx -> "INCORRECT"

let () =
  Printf.printf "Submission under assessment:\n%s\n" submission;
  let g =
    match Jfeed_pdg.Epdg.of_source submission with
    | [ (_, g) ] -> g
    | _ -> assert false
  in
  (* ---------------------------------------------------------------- *)
  Printf.printf "== Embeddings of the paper's patterns ==\n\n";
  List.iter
    (fun (p : Pattern.t) ->
      Printf.printf "pattern %s (%s):\n" p.Pattern.id p.Pattern.description;
      let ms = Matcher.embeddings p g in
      if ms = [] then print_endline "  (no embedding)\n"
      else
        List.iteri
          (fun k (m : Matcher.embedding) ->
            Printf.printf "  embedding %d:\n" k;
            List.iter
              (fun (u, (v, mk)) ->
                Printf.printf "    u%d -> v%d %-28s [%s]\n" u v
                  (Printf.sprintf "%S" (Jfeed_pdg.Epdg.node_text g v))
                  (mark mk))
              m.Matcher.iota;
            Printf.printf "    γ = {%s}\n"
              (String.concat "; "
                 (List.map
                    (fun (x, y) -> Printf.sprintf "%s → %s" x y)
                    m.Matcher.gamma)))
          ms;
      print_newline ())
    [
      Patterns.p_odd_access;
      Patterns.p_even_access;
      Patterns.p_cond_accum_add;
      Patterns.p_cond_accum_mul;
      Patterns.p_print_var;
    ];
  (* ---------------------------------------------------------------- *)
  Printf.printf "== Full grading (patterns + constraints) ==\n\n";
  match Grader.grade_source Bundles.assignment1.Bundles.grading submission with
  | Error msg -> print_endline msg
  | Ok result ->
      List.iter
        (fun c -> print_endline (Feedback.render c))
        result.Grader.comments;
      Printf.printf
        "\nscore Λ = %.1f / %d — the submission is recognized but flagged:\n\
        \ - odd should start at 0 (it starts at 1),\n\
        \ - the loop bound i <= a.length goes out of bounds.\n"
        result.Grader.score
        (List.length result.Grader.comments)
