(** Repair walkthrough: search the single-edit space for the minimal
    fix to a buggy Assignment 1 submission.

    1. An off-by-one submission — one edit away from correct — gets a
       concrete, positioned hint and the repaired source.
    2. The paper's Fig. 2a submission carries several distinct faults;
       that is outside the single-edit space, so the search screens
       everything, finds nothing, and says so honestly.
    3. Closing the loop with {!Jfeed_gen.Mutate.fault_inject}: inject a
       known single-edit fault into the reference solution and watch
       the search propose its exact inverse.

    Run with: [dune exec examples/repair_demo.exe] *)

open Jfeed_repair

let off_by_one =
  {|
void assignment1(int[] a) {
  int odd = 0;
  int even = 1;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    else
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let fig2a =
  {|
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let search_and_print title src =
  banner title;
  let outcome = Repair.search Jfeed_kb.Bundles.assignment1 src in
  print_endline (Repair.render outcome);
  Printf.printf "as JSON: %s\n" (Repair.to_json outcome)

let () =
  search_and_print "Off-by-one loop bound (single edit away)" off_by_one;
  (match (Repair.search Jfeed_kb.Bundles.assignment1 off_by_one).Repair.hint with
  | Some h ->
      banner "The repaired program (canonical rendering)";
      print_string h.Repair.h_source
  | None -> ());
  search_and_print "Fig. 2a (several faults: beyond a single edit)" fig2a;
  banner "Round trip: inject a fault, then repair it";
  let reference =
    Jfeed_gen.Spec.reference Jfeed_kb.Bundles.assignment1.Jfeed_kb.Bundles.gen
  in
  match Jfeed_gen.Mutate.fault_inject ~seed:1 reference with
  | None -> print_endline "no fault site available"
  | Some (mutant, f) ->
      Printf.printf "injected: `%s` -> `%s` in %s [%s]\n" f.Jfeed_gen.Mutate.f_before
        f.Jfeed_gen.Mutate.f_after f.Jfeed_gen.Mutate.f_meth
        (Jfeed_java.Edit.kind_slug f.Jfeed_gen.Mutate.f_kind);
      print_endline (Repair.render (Repair.search Jfeed_kb.Bundles.assignment1 mutant))
